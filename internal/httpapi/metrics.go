package httpapi

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"diffkv/internal/serving"
	"diffkv/internal/telemetry"
)

// handleMetrics exports the loop and driver counters in Prometheus text
// exposition format: the TTFT/TPOT/E2E latency distributions as
// summaries, goodput/throughput as gauges, and the lifetime
// request/preemption/offload counters. Everything derives from one
// locked Loop.Metrics snapshot, so a scrape is consistent.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := g.cfg.Loop.Metrics()
	var b strings.Builder

	metric := func(name, help, typ string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		fmt.Fprintf(&b, "%s %g\n", name, v)
	}
	gauge := func(name, help string, v float64) { metric(name, help, "gauge", v) }
	counter := func(name, help string, v float64) { metric(name, help, "counter", v) }
	// instMetric writes one family as an unlabeled fleet total plus one
	// {inst="N"} series per serving instance (HELP/TYPE once).
	instMetric := func(name, help, typ string, total float64, per func(serving.InstanceStats) float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		fmt.Fprintf(&b, "%s %g\n", name, total)
		for _, is := range m.Driver.PerInstance {
			fmt.Fprintf(&b, "%s{inst=\"%d\"} %g\n", name, is.Inst, per(is))
		}
	}
	instGauge := func(name, help string, total float64, per func(serving.InstanceStats) float64) {
		instMetric(name, help, "gauge", total, per)
	}
	instCounter := func(name, help string, total float64, per func(serving.InstanceStats) float64) {
		instMetric(name, help, "counter", total, per)
	}
	summary := func(name, help string, s serving.LatencyStats, count int) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
		fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %g\n", name, s.P50)
		fmt.Fprintf(&b, "%s{quantile=\"0.95\"} %g\n", name, s.P95)
		fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %g\n", name, s.P99)
		fmt.Fprintf(&b, "%s_sum %g\n", name, s.Mean*float64(count))
		fmt.Fprintf(&b, "%s_count %d\n", name, count)
	}

	d := m.Driver
	gauge("diffkv_up", "1 while the serving loop accepts work, 0 once draining or stopped.", boolGauge(!m.Draining && !m.Stopped))
	gauge("diffkv_uptime_seconds", "Wall time since the loop started.", m.UptimeSeconds)
	gauge("diffkv_sim_clock_seconds", "Simulated clock the serving engines have reached.", m.SimSeconds)
	counter("diffkv_loop_steps_total", "Scheduler iterations executed by the loop.", float64(m.Steps))
	counter("diffkv_sessions_opened_total", "Sessions accepted through the loop.", float64(m.Opened))
	counter("diffkv_requests_completed_total", "Requests completed.", float64(d.Completed))
	counter("diffkv_requests_cancelled_total", "Sessions cancelled before completion (disconnects included).", float64(d.Cancelled))
	counter("diffkv_requests_rejected_total", "Requests shed by cluster admission control.", float64(d.Rejected))
	instCounter("diffkv_preemptions_total", "Preemption events, recompute and swap recoveries (unlabeled: fleet total; inst label: per instance).",
		float64(d.Preemptions), func(is serving.InstanceStats) float64 { return float64(is.Preemptions) })
	gauge("diffkv_instances", "Serving engine instances behind this gateway.", float64(d.Instances))
	gauge("diffkv_sessions_open", "Sessions currently in flight.", float64(d.OpenSessions))
	instGauge("diffkv_queue_depth", "Requests awaiting admission (unlabeled: fleet total; inst label: per instance).",
		float64(d.QueueDepth), func(is serving.InstanceStats) float64 { return float64(is.QueueDepth) })
	instGauge("diffkv_running_requests", "Admitted, in-flight requests (unlabeled: fleet total; inst label: per instance).",
		float64(d.Running), func(is serving.InstanceStats) float64 { return float64(is.Running) })
	instGauge("diffkv_swapped_requests", "Sequences swapped out to the host tier (unlabeled: fleet total; inst label: per instance).",
		float64(d.Swapped), func(is serving.InstanceStats) float64 { return float64(is.Swapped) })
	instGauge("diffkv_kv_pages_free", "Free KV cache pages in manager mode (unlabeled: fleet total; inst label: per instance).",
		float64(d.FreeKVPages), func(is serving.InstanceStats) float64 { return float64(is.FreeKVPages) })
	instGauge("diffkv_kv_pages_used", "Used KV cache pages in manager mode (unlabeled: fleet total; inst label: per instance).",
		float64(d.UsedKVPages), func(is serving.InstanceStats) float64 { return float64(is.UsedKVPages) })
	instGauge("diffkv_instance_up", "1 while the instance serves (unlabeled: instances up; inst label: per instance, 0 when crashed).",
		float64(d.InstancesUp), func(is serving.InstanceStats) float64 { return boolGauge(is.Health != "down") })
	counter("diffkv_requests_failed_total", "Requests terminally failed by fault injection (crash retry budget exhausted).", float64(d.Failed))
	counter("diffkv_crashes_total", "Instance crash events injected.", float64(d.Crashes))
	counter("diffkv_restarts_total", "Instance restart events after injected crashes.", float64(d.Restarts))
	counter("diffkv_redispatches_total", "Crash orphans re-dispatched to surviving instances.", float64(d.Redispatches))
	counter("diffkv_swap_recovered_total", "Sequences the host tier carried through a crash (resumed, not recomputed).", float64(d.SwapRecovered))
	counter("diffkv_lost_kv_bytes_total", "GPU KV cache bytes destroyed by instance crashes.", float64(d.LostKVBytes))
	counter("diffkv_brownout_admissions_total", "Admissions forced to the all-low compression tier under queue pressure.", float64(d.BrownoutAdmits))
	instCounter("diffkv_swap_out_bytes_total", "Bytes swapped out to the host tier (unlabeled: fleet total; inst label: per instance).",
		float64(d.SwapOutBytes), func(is serving.InstanceStats) float64 { return float64(is.SwapOutBytes) })
	instCounter("diffkv_swap_in_bytes_total", "Bytes swapped back in from the host tier (unlabeled: fleet total; inst label: per instance).",
		float64(d.SwapInBytes), func(is serving.InstanceStats) float64 { return float64(is.SwapInBytes) })
	counter("diffkv_host_prefix_hits_total", "Prefix-cache entries served back from host memory.", float64(d.HostPrefixHits))
	if disaggRun(d) {
		writeDisaggMetrics(&b, d)
	}
	gauge("diffkv_throughput_tokens_per_sec", "Generated tokens per simulated second.", d.ThroughputTokensPerSec)
	gauge("diffkv_goodput_tokens_per_sec", "Completed requests' tokens per simulated second.", d.GoodputTokensPerSec)
	summary("diffkv_ttft_seconds", "Time to first token (simulated seconds).", m.TTFT, m.Completed)
	summary("diffkv_tpot_seconds", "Time per output token after the first (simulated seconds).", m.TPOT, m.Completed)
	summary("diffkv_e2e_seconds", "Arrival-to-completion latency (simulated seconds).", m.E2E, m.Completed)
	summary("diffkv_phase_queue_seconds", "Per-completion time spent queued before admission (simulated seconds).", m.Phases.Queue, m.Completed)
	summary("diffkv_phase_prefill_seconds", "Per-completion time spent in the prompt phase (simulated seconds).", m.Phases.Prefill, m.Completed)
	summary("diffkv_phase_decode_seconds", "Per-completion time spent generating tokens (simulated seconds).", m.Phases.Decode, m.Completed)
	summary("diffkv_phase_stall_seconds", "Per-completion time lost to recompute preemptions, over preempted completions only (simulated seconds).", m.Phases.Stall, m.Phases.StallCount)
	summary("diffkv_phase_swapped_seconds", "Per-completion time spent swapped out to the host tier, over swapped completions only (simulated seconds).", m.Phases.Swapped, m.Phases.SwappedCount)
	if g.cfg.Trace != nil {
		gauge("diffkv_trace_events_retained", "Trace events currently held in the collector ring.", float64(g.cfg.Trace.Retained()))
		counter("diffkv_trace_dropped_total", "Trace events evicted by the collector ring.", float64(g.cfg.Trace.Dropped()))
	}
	if tc := g.cfg.Telemetry; tc != nil {
		g.writeTelemetryMetrics(&b, tc)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// disaggRun reports whether the driver serves a disaggregated cluster
// (pool roles assigned), which gates the disagg metric families.
func disaggRun(d serving.DriverStats) bool {
	for _, is := range d.PerInstance {
		if is.Role != "" {
			return true
		}
	}
	return false
}

// writeDisaggMetrics appends the disaggregation families: the KV
// shipment counters with an unlabeled fleet total plus one
// {from,to} series per prefill→decode lane, and per-pool load gauges
// aggregated over instance roles.
func writeDisaggMetrics(b *strings.Builder, d serving.DriverStats) {
	fmt.Fprintf(b, "# HELP diffkv_kv_transfers_total Prefill-to-decode KV shipments over the NIC (unlabeled: fleet total; from/to labels: per lane).\n# TYPE diffkv_kv_transfers_total counter\n")
	fmt.Fprintf(b, "diffkv_kv_transfers_total %d\n", d.KVTransfers)
	for _, l := range d.KVShipLinks {
		fmt.Fprintf(b, "diffkv_kv_transfers_total{from=\"%d\",to=\"%d\"} %d\n", l.From, l.To, l.Transfers)
	}
	fmt.Fprintf(b, "# HELP diffkv_kv_bytes_shipped_total Compressed KV bytes shipped prefill-to-decode over the NIC (unlabeled: fleet total; from/to labels: per lane).\n# TYPE diffkv_kv_bytes_shipped_total counter\n")
	fmt.Fprintf(b, "diffkv_kv_bytes_shipped_total %d\n", d.KVBytesShipped)
	for _, l := range d.KVShipLinks {
		fmt.Fprintf(b, "diffkv_kv_bytes_shipped_total{from=\"%d\",to=\"%d\"} %d\n", l.From, l.To, l.Bytes)
	}

	poolGauge := func(name, help string, per func(serving.InstanceStats) float64) {
		byPool := map[string]float64{}
		for _, is := range d.PerInstance {
			if is.Role != "" {
				byPool[is.Role] += per(is)
			}
		}
		pools := make([]string, 0, len(byPool))
		for p := range byPool {
			pools = append(pools, p)
		}
		sort.Strings(pools)
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, p := range pools {
			fmt.Fprintf(b, "%s{pool=%q} %g\n", name, p, byPool[p])
		}
	}
	poolGauge("diffkv_pool_queue_depth", "Requests awaiting admission, summed per disaggregation pool.",
		func(is serving.InstanceStats) float64 { return float64(is.QueueDepth) })
	poolGauge("diffkv_pool_running_requests", "Admitted, in-flight requests, summed per disaggregation pool.",
		func(is serving.InstanceStats) float64 { return float64(is.Running) })
	poolGauge("diffkv_pool_instances", "Serving instances per disaggregation pool.",
		func(serving.InstanceStats) float64 { return 1 })
}

// histStride thins the 70-bucket telemetry layout to every 5th bound
// (~3.16x spacing, 14 exposition buckets) — plenty for recording rules
// without inflating every scrape.
const histStride = 5

// writeTelemetryMetrics appends the telemetry-backed series: proper
// cumulative latency histograms (the _hist suffix keeps them clear of
// the summary families of the same base name, which Prometheus forbids
// sharing; the summaries stay one release for compatibility), the
// per-instance saturation headroom gauge, and the SLO burn-rate gauges.
func (g *Gateway) writeTelemetryMetrics(b *strings.Builder, tc *telemetry.Center) {
	hist := func(name, help string, h telemetry.Hist) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		for _, bc := range h.CumulativeBuckets(histStride) {
			fmt.Fprintf(b, "%s_bucket{le=\"%g\"} %d\n", name, bc.UpperSec, bc.Cumulative)
		}
		fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
		fmt.Fprintf(b, "%s_sum %g\n", name, h.Sum())
		fmt.Fprintf(b, "%s_count %d\n", name, h.Count())
	}
	ttft, tpot, e2e := tc.LatencyHists()
	hist("diffkv_ttft_seconds_hist", "Time to first token, cumulative histogram (simulated seconds; supersedes the diffkv_ttft_seconds summary).", ttft)
	hist("diffkv_tpot_seconds_hist", "Time per output token after the first, cumulative histogram (simulated seconds; supersedes the diffkv_tpot_seconds summary).", tpot)
	hist("diffkv_e2e_seconds_hist", "Arrival-to-completion latency, cumulative histogram (simulated seconds; supersedes the diffkv_e2e_seconds summary).", e2e)

	sat := tc.SatByInst()
	keys := make([]int, 0, len(sat))
	for k := range sat {
		if k != 0 {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	fmt.Fprintf(b, "# HELP diffkv_saturation_headroom Saturation headroom fraction, (capacity-demand)/capacity (unlabeled: cluster-wide; inst label: per instance).\n# TYPE diffkv_saturation_headroom gauge\n")
	fmt.Fprintf(b, "diffkv_saturation_headroom %g\n", sat[0].Headroom)
	for _, k := range keys {
		fmt.Fprintf(b, "diffkv_saturation_headroom{inst=\"%d\"} %g\n", k, sat[k].Headroom)
	}

	slos := tc.SLOStatuses()
	if len(slos) > 0 {
		fmt.Fprintf(b, "# HELP diffkv_slo_burn_rate SLO error-budget burn rate per objective and evaluation window (1.0 = sustainable).\n# TYPE diffkv_slo_burn_rate gauge\n")
		for _, s := range slos {
			fmt.Fprintf(b, "diffkv_slo_burn_rate{metric=%q,window=\"fast\"} %g\n", s.Metric, s.FastBurn)
			fmt.Fprintf(b, "diffkv_slo_burn_rate{metric=%q,window=\"slow\"} %g\n", s.Metric, s.SlowBurn)
		}
		fmt.Fprintf(b, "# HELP diffkv_slo_firing 1 while the objective's multi-window burn-rate alert is firing.\n# TYPE diffkv_slo_firing gauge\n")
		for _, s := range slos {
			fmt.Fprintf(b, "diffkv_slo_firing{metric=%q} %g\n", s.Metric, boolGauge(s.Firing))
		}
	}
}
