package httpapi

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"diffkv/internal/cluster"
	"diffkv/internal/faults"
	"diffkv/internal/serving"
)

func TestRetryAfterHint(t *testing.T) {
	cases := []struct {
		name   string
		floor  time.Duration
		mean   float64
		queued int
		up     int
		want   int
	}{
		{"no completions falls back to floor", time.Second, 0, 12, 2, 1},
		{"empty queue falls back to floor", 2 * time.Second, 3.5, 0, 2, 2},
		{"drain estimate spread over instances", time.Second, 2.0, 10, 2, 10},
		{"zero up instances treated as one", time.Second, 2.0, 5, 0, 10},
		{"capped at sixty seconds", time.Second, 30, 100, 1, 60},
	}
	for _, tc := range cases {
		if got := retryAfterHint(tc.floor, tc.mean, tc.queued, tc.up); got != tc.want {
			t.Errorf("%s: retryAfterHint(%v, %g, %d, %d) = %d, want %d",
				tc.name, tc.floor, tc.mean, tc.queued, tc.up, got, tc.want)
		}
	}
}

// chaosLoop runs a 2-instance cluster whose first instance crashes
// permanently the moment work arrives — the gateway-visible half of
// fault injection.
func chaosLoop(t *testing.T, instances int, plan *faults.Plan) *serving.Loop {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Instances: instances,
		Engine:    traitsCfg(21),
		Policy:    cluster.PolicyLeastLoaded,
		Seed:      21,
		Faults:    plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := serving.NewLoop(c, serving.LoopConfig{})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		l.Shutdown(ctx)
	})
	return l
}

// A crashed instance shows up in /healthz: overall status "degraded"
// (the fleet still serves, so it stays 200), a per-instance health
// array, and the live instance count.
func TestHealthzReportsPerInstanceHealth(t *testing.T) {
	plan := &faults.Plan{
		Seed:    5,
		Crashes: []faults.Crash{{Inst: 1, AtSec: 0}}, // permanent, fires on first arrival
	}
	l := chaosLoop(t, 2, plan)
	srv := newTestServer(t, l)
	// the completion routes around the crash and finishes on instance 2
	resp, err := http.Post(srv.URL+"/v1/completions", "application/json",
		strings.NewReader(`{"prompt_tokens": 64, "max_tokens": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("completion status %d, want 200 (survivor should serve it)", resp.StatusCode)
	}

	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d, want 200: a degraded fleet still serves", hz.StatusCode)
	}
	var body struct {
		Status      string           `json:"status"`
		InstancesUp int              `json:"instances_up"`
		Instances   []instanceHealth `json:"instances"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "degraded" {
		t.Fatalf("status %q, want degraded", body.Status)
	}
	if body.InstancesUp != 1 {
		t.Fatalf("instances_up %d, want 1", body.InstancesUp)
	}
	if len(body.Instances) != 2 {
		t.Fatalf("per-instance entries %d, want 2", len(body.Instances))
	}
	if body.Instances[0].Inst != 1 || body.Instances[0].Health != "down" {
		t.Fatalf("instance 1 entry %+v, want down", body.Instances[0])
	}
	if body.Instances[1].Health != "healthy" {
		t.Fatalf("instance 2 entry %+v, want healthy", body.Instances[1])
	}
}

// The fault-recovery counters reach /metrics, with diffkv_instance_up
// per-instance series distinguishing the crashed instance from the
// survivor.
func TestMetricsExportFaultSeries(t *testing.T) {
	plan := &faults.Plan{
		Seed:    5,
		Crashes: []faults.Crash{{Inst: 1, AtSec: 0}},
	}
	l := chaosLoop(t, 2, plan)
	srv := newTestServer(t, l)
	resp, err := http.Post(srv.URL+"/v1/completions", "application/json",
		strings.NewReader(`{"prompt_tokens": 64, "max_tokens": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mr, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	for _, want := range []string{
		"diffkv_instance_up 1",
		`diffkv_instance_up{inst="1"} 0`,
		`diffkv_instance_up{inst="2"} 1`,
		"diffkv_crashes_total 1",
		"diffkv_restarts_total 0",
		"diffkv_requests_failed_total",
		"diffkv_redispatches_total",
		"diffkv_swap_recovered_total",
		"diffkv_lost_kv_bytes_total",
		"diffkv_brownout_admissions_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// A request whose instance crashes with no retry budget terminally
// fails, and the gateway reports it as an honest 503 with error type
// "failed" and a Retry-After hint — not a hang, not a fake completion.
func TestCompletionFailedMapsTo503(t *testing.T) {
	plan := &faults.Plan{
		Seed:        5,
		Crashes:     []faults.Crash{{Inst: 1, AtSec: 1}}, // permanent, mid-generation
		RetryBudget: -1,                                  // no re-dispatch
	}
	l := chaosLoop(t, 1, plan)
	srv := newTestServer(t, l)
	// long enough that the sim clock crosses the crash with the request
	// in flight
	resp, err := http.Post(srv.URL+"/v1/completions", "application/json",
		strings.NewReader(`{"prompt_tokens": 512, "max_tokens": 512}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("failed completion carries no Retry-After hint")
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Type != "failed" {
		t.Fatalf("error type %q, want failed", eb.Error.Type)
	}
}
