package httpapi

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"diffkv/internal/cluster"
	"diffkv/internal/disagg"
	"diffkv/internal/serving"
	"diffkv/internal/telemetry"
)

// disaggLoop runs a 2+2 prefill/decode cluster behind a serving loop —
// the gateway-visible half of disaggregation.
func disaggLoop(t *testing.T) *serving.Loop {
	t.Helper()
	cfg := managerCfg(31)
	cfg.MaxGenLen = 64
	c, err := cluster.New(cluster.Config{
		Instances: 4,
		Engine:    cfg,
		Policy:    cluster.PolicyDisaggAware,
		Seed:      31,
		Disagg:    &disagg.Config{PrefillInstances: 2, DecodeInstances: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	l := serving.NewLoop(c, serving.LoopConfig{})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		l.Shutdown(ctx)
	})
	return l
}

// A gateway completion against a disaggregated cluster splits into a
// prefill sub-request plus a decode remainder shipped over the NIC, and
// the shipment counters reach /metrics: the lane-labeled counter
// families plus the per-pool load gauges.
func TestMetricsExportDisaggSeries(t *testing.T) {
	l := disaggLoop(t)
	srv := newTestServer(t, l)
	for i := 0; i < 2; i++ {
		resp, err := http.Post(srv.URL+"/v1/completions", "application/json",
			strings.NewReader(`{"prompt_tokens": 128, "max_tokens": 8}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("completion status %d, want 200", resp.StatusCode)
		}
	}

	mr, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	for _, want := range []string{
		"diffkv_kv_transfers_total 2",
		"diffkv_kv_bytes_shipped_total ",
		`diffkv_kv_bytes_shipped_total{from="`,
		`diffkv_pool_instances{pool="decode"} 2`,
		`diffkv_pool_instances{pool="prefill"} 2`,
		`diffkv_pool_queue_depth{pool="decode"}`,
		`diffkv_pool_running_requests{pool="prefill"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	// every lane series originates in the prefill pool (1-2) and lands in
	// the decode pool (3-4)
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "diffkv_kv_bytes_shipped_total{") {
			continue
		}
		if !strings.Contains(line, `from="1"`) && !strings.Contains(line, `from="2"`) {
			t.Fatalf("shipment lane not from the prefill pool: %s", line)
		}
		if !strings.Contains(line, `to="3"`) && !strings.Contains(line, `to="4"`) {
			t.Fatalf("shipment lane not to the decode pool: %s", line)
		}
	}
}

// /debug/telemetry gains a "disagg" section on disaggregated clusters —
// shipment totals, per-lane traffic and the pool census — without
// disturbing the snapshot's own keys.
func TestDebugTelemetryDisaggSection(t *testing.T) {
	l := disaggLoop(t)
	tc := telemetry.New(telemetry.Config{SampleIntervalUs: 1e6})
	g, err := New(Config{Loop: l, ModelName: "Llama3-8B", Telemetry: tc})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)

	resp, err := http.Post(srv.URL+"/v1/completions", "application/json",
		strings.NewReader(`{"prompt_tokens": 128, "max_tokens": 8}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	dr, err := http.Get(srv.URL + "/debug/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Body.Close()
	var doc struct {
		Disagg *disaggSection `json:"disagg"`
	}
	if err := json.NewDecoder(dr.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Disagg == nil {
		t.Fatal("/debug/telemetry has no disagg section on a disaggregated cluster")
	}
	if doc.Disagg.Transfers != 1 || doc.Disagg.KVBytesShipped <= 0 {
		t.Fatalf("disagg section wrong: %+v", doc.Disagg)
	}
	if doc.Disagg.Pools["prefill"] != 2 || doc.Disagg.Pools["decode"] != 2 {
		t.Fatalf("pool census wrong: %+v", doc.Disagg.Pools)
	}
	if len(doc.Disagg.Links) != 1 || doc.Disagg.Links[0].From > 2 || doc.Disagg.Links[0].To < 3 {
		t.Fatalf("lane wrong: %+v", doc.Disagg.Links)
	}
}
