package httpapi

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"diffkv/internal/serving"
	"diffkv/internal/trace"
)

// newDebugServer wires a traced engine loop behind a gateway with the
// /debug routes mounted, returning the server and the collector.
func newDebugServer(t *testing.T, cfg serving.Config) (*httptest.Server, *trace.Collector) {
	t.Helper()
	col := trace.NewCollector(0)
	cfg.Tracer = col
	l := engineLoop(t, cfg, serving.LoopConfig{})
	g, err := New(Config{Loop: l, ModelName: "Llama3-8B", Trace: col})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	return srv, col
}

// TestDebugRequestSpanTree is the acceptance-criteria path: a blocking
// completion, then GET /debug/requests/{id} with the completion's own
// "cmpl-<id>", must return a span tree whose phase durations sum to the
// request's end-to-end latency within 1 microsecond.
func TestDebugRequestSpanTree(t *testing.T) {
	srv, _ := newDebugServer(t, managerCfg(5))
	resp, err := http.Post(srv.URL+"/v1/completions", "application/json",
		strings.NewReader(`{"prompt_tokens": 256, "max_tokens": 24}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("completion status %d", resp.StatusCode)
	}
	var comp completionResponse
	if err := json.NewDecoder(resp.Body).Decode(&comp); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(comp.ID, "cmpl-") {
		t.Fatalf("completion id %q", comp.ID)
	}
	if comp.DiffKV == nil || comp.DiffKV.E2EMs <= 0 {
		t.Fatalf("completion lacks sim info: %+v", comp.DiffKV)
	}
	// the diffkv block's phase fields must themselves sum to e2e
	phaseSum := comp.DiffKV.QueueMs + comp.DiffKV.PrefillMs + comp.DiffKV.DecodeMs +
		comp.DiffKV.StallMs + comp.DiffKV.SwappedMs
	if diff := math.Abs(phaseSum - comp.DiffKV.E2EMs); diff > 1e-3 {
		t.Fatalf("response phases sum %.6fms != e2e %.6fms", phaseSum, comp.DiffKV.E2EMs)
	}

	dr, err := http.Get(srv.URL + "/debug/requests/" + comp.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Body.Close()
	if dr.StatusCode != http.StatusOK {
		t.Fatalf("debug status %d", dr.StatusCode)
	}
	var rt trace.RequestSpans
	if err := json.NewDecoder(dr.Body).Decode(&rt); err != nil {
		t.Fatal(err)
	}
	if !rt.Completed || rt.Root == nil || len(rt.Root.Children) == 0 {
		t.Fatalf("span tree incomplete: %+v", rt)
	}
	if diff := math.Abs(rt.Phases.TotalUs() - rt.E2EUs()); diff > 1 {
		t.Fatalf("span phase sum %.3fus != e2e %.3fus (off by %.3fus)",
			rt.Phases.TotalUs(), rt.E2EUs(), diff)
	}
	// the tree's e2e is the same latency the completion reported
	if diff := math.Abs(rt.E2EUs()/1e3 - comp.DiffKV.E2EMs); diff > 1e-3 {
		t.Fatalf("span e2e %.6fms != completion e2e %.6fms", rt.E2EUs()/1e3, comp.DiffKV.E2EMs)
	}

	// unknown request → 404; garbage id → 400
	if r, _ := http.Get(srv.URL + "/debug/requests/999999999"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown request status %d", r.StatusCode)
	}
	if r, _ := http.Get(srv.URL + "/debug/requests/nonsense"); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id status %d", r.StatusCode)
	}
}

// TestDebugTraceDownload checks the Perfetto endpoint: a well-formed
// trace-event file whose embedded events round-trip through ReadEvents.
func TestDebugTraceDownload(t *testing.T) {
	srv, col := newDebugServer(t, managerCfg(6))
	if resp, err := http.Post(srv.URL+"/v1/completions", "application/json",
		strings.NewReader(`{"prompt_tokens": 128, "max_tokens": 8}`)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	events, err := trace.ReadEvents(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != col.Retained() {
		t.Fatalf("download carried %d events, collector holds %d", len(events), col.Retained())
	}
	if trace.FindRequestSpans(trace.BuildRequestSpans(events), events[0].Seq) == nil &&
		len(events) > 0 {
		// at least one span tree must be reconstructible from the download
		trees := trace.BuildRequestSpans(events)
		if len(trees) == 0 {
			t.Fatal("no span trees from downloaded trace")
		}
	}
}

// TestDebugEventsSSE tails the live event stream while a request runs.
func TestDebugEventsSSE(t *testing.T) {
	srv, _ := newDebugServer(t, traitsCfg(7))
	tail, err := http.Get(srv.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Body.Close()
	if ct := tail.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	if resp, err := http.Post(srv.URL+"/v1/completions", "application/json",
		strings.NewReader(`{"prompt_tokens": 64, "max_tokens": 4}`)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	// the tail must carry the request's lifecycle; read until complete
	var sawOpen, sawComplete bool
	sc := bufio.NewScanner(tail.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e trace.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		switch e.Kind {
		case trace.KindOpen:
			sawOpen = true
		case trace.KindComplete:
			sawComplete = true
		}
		if sawComplete {
			break
		}
	}
	if !sawOpen || !sawComplete {
		t.Fatalf("tail missed lifecycle: open=%v complete=%v", sawOpen, sawComplete)
	}
}

// TestDebugRoutesAbsentWithoutTrace: no collector, no /debug surface.
func TestDebugRoutesAbsentWithoutTrace(t *testing.T) {
	srv := newTestServer(t, engineLoop(t, traitsCfg(8), serving.LoopConfig{}))
	resp, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestMetricsTraceAndInstanceSeries: the trace health metrics and the
// per-instance labeled gauges appear on a traced gateway's scrape.
func TestMetricsTraceAndInstanceSeries(t *testing.T) {
	srv, _ := newDebugServer(t, managerCfg(9))
	if resp, err := http.Post(srv.URL+"/v1/completions", "application/json",
		strings.NewReader(`{"prompt_tokens": 64, "max_tokens": 4}`)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"diffkv_trace_events_retained ",
		"diffkv_trace_dropped_total ",
		`diffkv_queue_depth{inst="1"}`,
		`diffkv_running_requests{inst="1"}`,
		`diffkv_kv_pages_free{inst="1"}`,
		`diffkv_kv_pages_used{inst="1"}`,
		"diffkv_phase_queue_seconds{quantile=",
		"diffkv_phase_prefill_seconds{quantile=",
		"diffkv_phase_decode_seconds{quantile=",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics scrape lacks %q", want)
		}
	}
}
