package attention

import (
	"math"
	"testing"

	"diffkv/internal/kvcache"
	"diffkv/internal/mathx"
	"diffkv/internal/policy"
	"diffkv/internal/quant"
	"diffkv/internal/synth"
)

func genKV(rng *mathx.RNG, n, dim int) (q []float32, keys, vals [][]float32) {
	q = make([]float32, dim)
	rng.NormVec(q, 1)
	for j := 0; j < n; j++ {
		k := make([]float32, dim)
		v := make([]float32, dim)
		rng.NormVec(k, 1)
		rng.NormVec(v, 1)
		keys = append(keys, k)
		vals = append(vals, v)
	}
	return
}

func TestReferenceWeightsSumToOne(t *testing.T) {
	rng := mathx.NewRNG(1)
	q, keys, vals := genKV(rng, 50, 32)
	res := Reference(q, keys, vals)
	var sum float64
	for _, tw := range res.Weights {
		sum += float64(tw.Weight)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("weights sum = %v", sum)
	}
	if len(res.Output) != 32 {
		t.Fatalf("output dim = %d", len(res.Output))
	}
}

func TestReferenceSingleToken(t *testing.T) {
	rng := mathx.NewRNG(2)
	q, keys, vals := genKV(rng, 1, 16)
	res := Reference(q, keys, vals)
	// single token: weight 1, output = value
	if res.Weights[0].Weight != 1 {
		t.Fatalf("single-token weight = %v", res.Weights[0].Weight)
	}
	if e := mathx.RelErr(res.Output, vals[0]); e > 1e-6 {
		t.Fatalf("output != value: %v", e)
	}
}

func TestUniformHighPrecisionMatchesReference(t *testing.T) {
	rng := mathx.NewRNG(3)
	q, keys, vals := genKV(rng, 100, 64)
	ref := Reference(q, keys, vals)
	res := Uniform(q, keys, vals, quant.K8V8)
	if e := OutputError(res.Output, ref.Output); e > 0.02 {
		t.Fatalf("K8V8 error vs reference = %v", e)
	}
}

func TestUniformErrorOrdering(t *testing.T) {
	// More aggressive quantization must increase output error.
	rng := mathx.NewRNG(4)
	q, keys, vals := genKV(rng, 200, 64)
	ref := Reference(q, keys, vals)
	prev := -1.0
	for _, prec := range []quant.Precision{quant.K8V8, quant.K8V4, quant.K4V2, quant.K2V2} {
		res := Uniform(q, keys, vals, prec)
		e := OutputError(res.Output, ref.Output)
		if e < prev {
			t.Fatalf("%s error %v below previous %v", prec, e, prev)
		}
		prev = e
	}
}

func TestKeyBitsMatterMoreThanValueBits(t *testing.T) {
	// The paper's core quantization insight (§3.1): K8V4 must beat its
	// mirror K4V8, and K4V2 must beat K2V4, on realistic attention inputs
	// where keys determine heavy-tailed scores.
	rng := mathx.NewRNG(5)
	model := synth.Llama3_8B
	var e84, e48, e42, e24 float64
	reps := 12
	for rep := 0; rep < reps; rep++ {
		prof := synth.Profile(model, rep%4, rep%8, 1, rng.SplitAt(uint64(rep)))
		h := synth.GenHead(model, prof, 256, rng.SplitAt(uint64(100+rep)))
		q := h.Query(rng)
		ref := Reference(q, h.Keys, h.Vals)
		e84 += OutputError(Uniform(q, h.Keys, h.Vals, quant.K8V4).Output, ref.Output)
		e48 += OutputError(Uniform(q, h.Keys, h.Vals, quant.K4V8).Output, ref.Output)
		e42 += OutputError(Uniform(q, h.Keys, h.Vals, quant.K4V2).Output, ref.Output)
		e24 += OutputError(Uniform(q, h.Keys, h.Vals, quant.K2V4).Output, ref.Output)
	}
	if e84 >= e48 {
		t.Fatalf("K8V4 error (%v) should be below K4V8 (%v)", e84/float64(reps), e48/float64(reps))
	}
	if e42 >= e24 {
		t.Fatalf("K4V2 error (%v) should be below K2V4 (%v)", e42/float64(reps), e24/float64(reps))
	}
}

func TestUniformBytesAccounting(t *testing.T) {
	rng := mathx.NewRNG(6)
	q, keys, vals := genKV(rng, 10, 64)
	res := Uniform(q, keys, vals, quant.K4V2)
	if res.BytesRead != 10*quant.K4V2.TokenBytes(64) {
		t.Fatalf("BytesRead = %d", res.BytesRead)
	}
	ref := Reference(q, keys, vals)
	if ref.BytesRead <= res.BytesRead {
		t.Fatal("reference must read more bytes than K4V2")
	}
}

func newTestCache(t *testing.T, dim int) (*kvcache.Manager, *kvcache.HeadCache) {
	t.Helper()
	m, err := kvcache.NewManager(kvcache.Config{
		Dim: dim, PageBytes: 4096, NumPages: 128,
		HiPrec: quant.K8V4, LoPrec: quant.K4V2,
		MaxSeqLen: 2048, Materialize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := m.AddSequence(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m, sc.Heads[0]
}

func TestCompressedMatchesUniformWhenAllHigh(t *testing.T) {
	// With every token in the high tier and no window, Compressed must
	// match the Uniform(K8V4) path.
	rng := mathx.NewRNG(7)
	dim := 64
	q, keys, vals := genKV(rng, 120, dim)
	_, hc := newTestCache(t, dim)
	for j := range keys {
		if err := hc.AppendToken(kvcache.LevelHi, keys[j], vals[j], 1, int32(j)); err != nil {
			t.Fatal(err)
		}
	}
	cRes := Compressed(q, hc, nil)
	uRes := Uniform(q, keys, vals, quant.K8V4)
	if e := mathx.RelErr(cRes.Output, uRes.Output); e > 1e-4 {
		t.Fatalf("compressed vs uniform mismatch: %v", e)
	}
	if cRes.BytesRead != uRes.BytesRead {
		t.Fatalf("bytes: %d vs %d", cRes.BytesRead, uRes.BytesRead)
	}
}

func TestCompressedMixedTiersAndWindow(t *testing.T) {
	rng := mathx.NewRNG(8)
	dim := 64
	q, keys, vals := genKV(rng, 90, dim)
	_, hc := newTestCache(t, dim)
	// 30 high, 30 low, 30 in the window
	for j := 0; j < 30; j++ {
		hc.AppendToken(kvcache.LevelHi, keys[j], vals[j], 1, int32(j))
	}
	for j := 30; j < 60; j++ {
		hc.AppendToken(kvcache.LevelLo, keys[j], vals[j], 1, int32(j))
	}
	var window []policy.WindowToken
	for j := 60; j < 90; j++ {
		window = append(window, policy.WindowToken{Key: keys[j], Val: vals[j], Pos: int32(j)})
	}
	res := Compressed(q, hc, window)
	ref := Reference(q, keys, vals)
	if e := OutputError(res.Output, ref.Output); e > 0.35 {
		t.Fatalf("mixed-tier error vs reference = %v", e)
	}
	// every position must appear exactly once in the weights
	seen := map[int32]int{}
	var sum float64
	for _, tw := range res.Weights {
		seen[tw.Pos]++
		sum += float64(tw.Weight)
	}
	if len(seen) != 90 {
		t.Fatalf("distinct positions = %d", len(seen))
	}
	for pos, c := range seen {
		if c != 1 {
			t.Fatalf("position %d counted %d times", pos, c)
		}
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("weights sum = %v", sum)
	}
}

func TestCompressedEmptyCacheWindowOnly(t *testing.T) {
	rng := mathx.NewRNG(9)
	dim := 32
	q, keys, vals := genKV(rng, 5, dim)
	_, hc := newTestCache(t, dim)
	var window []policy.WindowToken
	for j := range keys {
		window = append(window, policy.WindowToken{Key: keys[j], Val: vals[j], Pos: int32(j)})
	}
	res := Compressed(q, hc, window)
	ref := Reference(q, keys, vals)
	if e := OutputError(res.Output, ref.Output); e > 1e-5 {
		t.Fatalf("window-only attention should be exact: %v", e)
	}
}

func TestCompressedBytesReflectTiers(t *testing.T) {
	rng := mathx.NewRNG(10)
	dim := 64
	_, keys, vals := genKV(rng, 40, dim)
	q := make([]float32, dim)
	rng.NormVec(q, 1)
	_, hc := newTestCache(t, dim)
	for j := 0; j < 20; j++ {
		hc.AppendToken(kvcache.LevelHi, keys[j], vals[j], 1, int32(j))
	}
	for j := 20; j < 40; j++ {
		hc.AppendToken(kvcache.LevelLo, keys[j], vals[j], 1, int32(j))
	}
	res := Compressed(q, hc, nil)
	want := 20*quant.K8V4.TokenBytes(dim) + 20*quant.K4V2.TokenBytes(dim)
	if res.BytesRead != want {
		t.Fatalf("BytesRead = %d, want %d", res.BytesRead, want)
	}
}

func TestMaxAggregate(t *testing.T) {
	r1 := Result{Weights: []TokenWeight{{Pos: 0, Weight: 0.3}, {Pos: 1, Weight: 0.7}}}
	r2 := Result{Weights: []TokenWeight{{Pos: 0, Weight: 0.5}, {Pos: 1, Weight: 0.2}}}
	agg := MaxAggregate([]Result{r1, r2}, 3)
	if agg[0] != 0.5 || agg[1] != 0.7 {
		t.Fatalf("agg = %v", agg)
	}
	if agg[2] != 0 {
		t.Fatalf("untouched position should score 0, got %v", agg[2])
	}
}

func TestMaxAggregateEmpty(t *testing.T) {
	if len(MaxAggregate(nil, 0)) != 0 {
		t.Fatal("empty aggregate should be empty")
	}
}

func TestOutputErrorIdentity(t *testing.T) {
	x := []float32{1, 2, 3}
	if OutputError(x, x) != 0 {
		t.Fatal("self error should be 0")
	}
}
