package attention

import (
	"math"

	"diffkv/internal/kvcache"
	"diffkv/internal/mathx"
	"diffkv/internal/policy"
	"diffkv/internal/quant"
)

// Scratch is the reusable kernel context of the attention path. A Scratch
// owns every buffer the kernels need (logits, positions, output, token
// weights, quantization arenas), so the steady-state hot path performs zero
// allocations: buffers grow on the first calls and are reused afterwards.
//
// Results returned by Scratch methods alias Scratch storage and stay valid
// only until the next call on the same Scratch. A Scratch is not safe for
// concurrent use; each worker keeps its own.
type Scratch struct {
	logits    []float32
	positions []int32
	out       []float32
	tw        []TokenWeight

	// uniform-path arenas: per-call key buffer, one value arena sliced per
	// token, and per-token value metadata
	kbuf   []byte
	varena []byte
	vmeta  []float32
}

// grow readies the shared buffers for n tokens at dimension dim.
func (s *Scratch) grow(n, dim int) {
	if cap(s.logits) < n {
		s.logits = make([]float32, 0, growCap(cap(s.logits), n))
	}
	if cap(s.positions) < n {
		s.positions = make([]int32, 0, growCap(cap(s.positions), n))
	}
	if cap(s.tw) < n {
		s.tw = make([]TokenWeight, 0, growCap(cap(s.tw), n))
	}
	if cap(s.out) < dim {
		s.out = make([]float32, dim)
	}
}

func growCap(cur, need int) int {
	if c := 2 * cur; c > need {
		return c
	}
	return need
}

// Compressed computes attention over a DiffKV head cache plus the
// uncompressed recent window, iterating unified pages directly: one batched
// fused-dot call per page for the keys and one batched fused-axpy call per
// page for the values (high-precision pages first, then low-precision, then
// the window — the warp iteration order of the paper's kernel, §6.2).
func (s *Scratch) Compressed(q []float32, hc *kvcache.HeadCache, window []policy.WindowToken) Result {
	dim := len(q)
	invSqrt := float32(1 / math.Sqrt(float64(dim)))
	total := hc.TotalTokens() + len(window)
	s.grow(total, dim)

	logits := s.logits[:0]
	positions := s.positions[:0]
	bytes := 0

	// ---- key pass: page-granular fused dequantize-dot ----
	for _, level := range [2]kvcache.Level{kvcache.LevelHi, kvcache.LevelLo} {
		for i, n := 0, hc.PageCount(level); i < n; i++ {
			p := hc.PageAt(level, i)
			if p.N == 0 {
				continue
			}
			off := len(logits)
			logits = logits[:off+p.N]
			kd, km := p.KeySlots()
			quant.DequantDotSlots(q, kd, p.Prec.KeyBits, p.N, km, logits[off:])
			for j := off; j < len(logits); j++ {
				logits[j] *= invSqrt
			}
			positions = append(positions, p.Positions()...)
			bytes += p.N * p.Prec.TokenBytes(dim)
		}
	}
	for _, w := range window {
		logits = append(logits, mathx.Dot(q, w.Key)*invSqrt)
		positions = append(positions, w.Pos)
		bytes += quant.FP16.TokenBytes(dim)
	}

	weights := mathx.Softmax(logits, logits)

	// ---- value pass: page-granular fused dequantize-axpy, same order ----
	out := s.out[:dim]
	for i := range out {
		out[i] = 0
	}
	idx := 0
	for _, level := range [2]kvcache.Level{kvcache.LevelHi, kvcache.LevelLo} {
		for i, n := 0, hc.PageCount(level); i < n; i++ {
			p := hc.PageAt(level, i)
			if p.N == 0 {
				continue
			}
			vd, vm := p.ValSlots()
			quant.DequantAxpySlots(weights[idx:idx+p.N], vd, p.Prec.ValBits, dim, vm, out)
			idx += p.N
		}
	}
	for _, w := range window {
		mathx.Axpy(weights[idx], w.Val, out)
		idx++
	}

	tw := s.tw[:total]
	for j := range tw {
		tw[j] = TokenWeight{Pos: positions[j], Weight: weights[j]}
	}
	return Result{Output: out, Weights: tw, BytesRead: bytes}
}

// Uniform computes attention with every key/value quantized at one
// precision, quantizing values into a single preallocated arena sliced per
// token instead of one fresh buffer per token.
func (s *Scratch) Uniform(q []float32, keys, vals [][]float32, prec quant.Precision) Result {
	n := len(keys)
	dim := len(q)
	s.grow(n, dim)
	invSqrt := float32(1 / math.Sqrt(float64(dim)))

	kb := quant.PackedLen(dim, prec.KeyBits)
	vb := quant.PackedLen(dim, prec.ValBits)
	if cap(s.kbuf) < kb {
		s.kbuf = make([]byte, kb)
	}
	if cap(s.varena) < n*vb {
		s.varena = make([]byte, n*vb)
	}
	if cap(s.vmeta) < 2*n {
		s.vmeta = make([]float32, 2*n)
	}
	kbuf := s.kbuf[:kb]
	varena := s.varena[:n*vb]
	vmeta := s.vmeta[:2*n]

	logits := s.logits[:n]
	for j := 0; j < n; j++ {
		ks, kz := quant.QuantizeInto(keys[j], prec.KeyBits, kbuf)
		logits[j] = quant.DequantDot(q, kbuf, prec.KeyBits, ks, kz) * invSqrt
		vs, vz := quant.QuantizeInto(vals[j], prec.ValBits, varena[j*vb:(j+1)*vb])
		vmeta[2*j], vmeta[2*j+1] = vs, vz
	}
	weights := mathx.Softmax(logits, logits)

	out := s.out[:dim]
	for i := range out {
		out[i] = 0
	}
	quant.DequantAxpySlots(weights, varena, prec.ValBits, dim, vmeta, out)

	tw := s.tw[:n]
	for j := range tw {
		tw[j] = TokenWeight{Pos: int32(j), Weight: weights[j]}
	}
	return Result{Output: out, Weights: tw, BytesRead: n * prec.TokenBytes(dim)}
}

// Reference computes exact attention of query q over uncompressed keys and
// values — the FP16 baseline — into Scratch-owned buffers.
func (s *Scratch) Reference(q []float32, keys, vals [][]float32) Result {
	n := len(keys)
	dim := len(q)
	s.grow(n, dim)
	invSqrt := float32(1 / math.Sqrt(float64(dim)))

	logits := s.logits[:n]
	for j := 0; j < n; j++ {
		logits[j] = mathx.Dot(q, keys[j]) * invSqrt
	}
	weights := mathx.Softmax(logits, logits)

	out := s.out[:dim]
	for i := range out {
		out[i] = 0
	}
	tw := s.tw[:n]
	for j := 0; j < n; j++ {
		mathx.Axpy(weights[j], vals[j], out)
		tw[j] = TokenWeight{Pos: int32(j), Weight: weights[j]}
	}
	return Result{Output: out, Weights: tw, BytesRead: n * quant.FP16.TokenBytes(dim)}
}
