package attention

import (
	"math"
	"testing"
	"testing/quick"

	"diffkv/internal/kvcache"
	"diffkv/internal/mathx"
	"diffkv/internal/policy"
)

func TestCompressedSplitMatchesUnsplit(t *testing.T) {
	rng := mathx.NewRNG(1)
	dim := 64
	q, keys, vals := genKV(rng, 200, dim)
	_, hc := newTestCache(t, dim)
	for j := 0; j < 150; j++ {
		lvl := kvcache.LevelHi
		if j%2 == 0 {
			lvl = kvcache.LevelLo
		}
		hc.AppendToken(lvl, keys[j], vals[j], 1, int32(j))
	}
	var window []policy.WindowToken
	for j := 150; j < 200; j++ {
		window = append(window, policy.WindowToken{Key: keys[j], Val: vals[j], Pos: int32(j)})
	}
	base := Compressed(q, hc, window)
	for _, splits := range []int{1, 2, 4, 8, 64} {
		split := CompressedSplit(q, hc, window, splits)
		if e := mathx.RelErr(split.Output, base.Output); e > 1e-4 {
			t.Fatalf("splits=%d diverges from unsplit: %v", splits, e)
		}
		if split.BytesRead != base.BytesRead {
			t.Fatalf("splits=%d bytes %d != %d", splits, split.BytesRead, base.BytesRead)
		}
		var sum float64
		for _, tw := range split.Weights {
			sum += float64(tw.Weight)
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Fatalf("splits=%d weights sum to %v", splits, sum)
		}
	}
}

func TestCompressedSplitEmpty(t *testing.T) {
	_, hc := newTestCache(t, 32)
	q := make([]float32, 32)
	res := CompressedSplit(q, hc, nil, 4)
	for _, v := range res.Output {
		if v != 0 {
			t.Fatal("empty attention should be zero")
		}
	}
}

func TestCompressedSplitMoreSplitsThanTokens(t *testing.T) {
	rng := mathx.NewRNG(2)
	dim := 32
	q, keys, vals := genKV(rng, 3, dim)
	_, hc := newTestCache(t, dim)
	for j := range keys {
		hc.AppendToken(kvcache.LevelHi, keys[j], vals[j], 1, int32(j))
	}
	res := CompressedSplit(q, hc, nil, 100)
	base := Compressed(q, hc, nil)
	if e := mathx.RelErr(res.Output, base.Output); e > 1e-5 {
		t.Fatalf("oversplit diverges: %v", e)
	}
}

func TestPartialMergeIdentity(t *testing.T) {
	p := newPartial(4)
	o := newPartial(4)
	p.Merge(o) // identity merge
	if !math.IsInf(p.MaxLogit, -1) || p.Denom != 0 {
		t.Fatal("identity merge corrupted partial")
	}
}

func TestPartialMergeAssociativityProperty(t *testing.T) {
	// ((A ⊕ B) ⊕ C) must equal (A ⊕ (B ⊕ C)) up to rounding.
	f := func(rawLogits []int8) bool {
		if len(rawLogits) < 6 {
			return true
		}
		if len(rawLogits) > 30 {
			rawLogits = rawLogits[:30]
		}
		dim := 4
		rng := mathx.NewRNG(uint64(len(rawLogits)))
		vals := make([][]float32, len(rawLogits))
		for i := range vals {
			v := make([]float32, dim)
			rng.NormVec(v, 1)
			vals[i] = v
		}
		build := func(lo, hi int) *Partial {
			p := newPartial(dim)
			for i := lo; i < hi; i++ {
				v := vals[i]
				p.addToken(float64(rawLogits[i])/16,
					func(w float32, dst []float32) { mathx.Axpy(w, v, dst) }, int32(i))
			}
			return p
		}
		third := len(rawLogits) / 3
		// left association
		l := build(0, third)
		l.Merge(build(third, 2*third))
		l.Merge(build(2*third, len(rawLogits)))
		// right association
		mid := build(third, 2*third)
		mid.Merge(build(2*third, len(rawLogits)))
		r := build(0, third)
		r.Merge(mid)
		lr := l.Finalize()
		rr := r.Finalize()
		return mathx.RelErr(lr.Output, rr.Output) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPartialNumericalStabilityExtremeLogits(t *testing.T) {
	// huge logit spread must not overflow (log-sum-exp bookkeeping)
	dim := 2
	p := newPartial(dim)
	v1 := []float32{1, 0}
	v2 := []float32{0, 1}
	p.addToken(-300, func(w float32, dst []float32) { mathx.Axpy(w, v1, dst) }, 0)
	p.addToken(300, func(w float32, dst []float32) { mathx.Axpy(w, v2, dst) }, 1)
	res := p.Finalize()
	if math.IsNaN(float64(res.Output[0])) || math.IsNaN(float64(res.Output[1])) {
		t.Fatal("NaN under extreme logits")
	}
	// token with logit 300 dominates completely
	if res.Output[1] < 0.999 {
		t.Fatalf("dominant token weight = %v", res.Output[1])
	}
}
