package attention

import (
	"testing"

	"diffkv/internal/kvcache"
	"diffkv/internal/mathx"
	"diffkv/internal/policy"
	"diffkv/internal/quant"
)

// buildMixedCache fills a head cache with hi/lo tokens and returns a window
// slice, mirroring the shape the generation loop produces.
func buildMixedCache(t testing.TB, rng *mathx.RNG, dim, nHi, nLo, nWin int) (*kvcache.HeadCache, []policy.WindowToken, [][]float32, [][]float32) {
	t.Helper()
	m, err := kvcache.NewManager(kvcache.Config{
		Dim: dim, PageBytes: 4096, NumPages: 128,
		HiPrec: quant.K8V4, LoPrec: quant.K4V2,
		MaxSeqLen: 2048, Materialize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := m.AddSequence(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	hc := sc.Heads[0]
	n := nHi + nLo + nWin
	var keys, vals [][]float32
	for j := 0; j < n; j++ {
		k := make([]float32, dim)
		v := make([]float32, dim)
		rng.NormVec(k, 1)
		rng.NormVec(v, 1)
		keys = append(keys, k)
		vals = append(vals, v)
	}
	for j := 0; j < nHi; j++ {
		if err := hc.AppendToken(kvcache.LevelHi, keys[j], vals[j], 1, int32(j)); err != nil {
			t.Fatal(err)
		}
	}
	for j := nHi; j < nHi+nLo; j++ {
		if err := hc.AppendToken(kvcache.LevelLo, keys[j], vals[j], 1, int32(j)); err != nil {
			t.Fatal(err)
		}
	}
	var window []policy.WindowToken
	for j := nHi + nLo; j < n; j++ {
		window = append(window, policy.WindowToken{Key: keys[j], Val: vals[j], Pos: int32(j)})
	}
	return hc, window, keys, vals
}

func TestScratchCompressedMatchesWrapper(t *testing.T) {
	rng := mathx.NewRNG(21)
	dim := 64
	hc, window, _, _ := buildMixedCache(t, rng, dim, 40, 70, 20)
	q := make([]float32, dim)
	rng.NormVec(q, 1)

	var s Scratch
	// run twice so the second call exercises fully warmed buffers
	s.Compressed(q, hc, window)
	got := s.Compressed(q, hc, window)
	want := Compressed(q, hc, window)

	if got.BytesRead != want.BytesRead {
		t.Fatalf("bytes: %d vs %d", got.BytesRead, want.BytesRead)
	}
	if len(got.Weights) != len(want.Weights) {
		t.Fatalf("weights: %d vs %d", len(got.Weights), len(want.Weights))
	}
	for j := range got.Weights {
		if got.Weights[j] != want.Weights[j] {
			t.Fatalf("weight %d: %+v vs %+v", j, got.Weights[j], want.Weights[j])
		}
	}
	if e := mathx.RelErr(got.Output, want.Output); e != 0 {
		t.Fatalf("scratch output differs from wrapper: %v", e)
	}
}

func TestScratchUniformMatchesWrapper(t *testing.T) {
	rng := mathx.NewRNG(22)
	q, keys, vals := genKV(rng, 80, 64)
	var s Scratch
	s.Uniform(q, keys, vals, quant.K4V2)
	got := s.Uniform(q, keys, vals, quant.K4V2)
	want := Uniform(q, keys, vals, quant.K4V2)
	if e := mathx.RelErr(got.Output, want.Output); e != 0 {
		t.Fatalf("scratch uniform differs: %v", e)
	}
	if got.BytesRead != want.BytesRead {
		t.Fatalf("bytes: %d vs %d", got.BytesRead, want.BytesRead)
	}
}

func TestScratchReferenceMatchesWrapper(t *testing.T) {
	rng := mathx.NewRNG(23)
	q, keys, vals := genKV(rng, 60, 32)
	var s Scratch
	got := s.Reference(q, keys, vals)
	want := Reference(q, keys, vals)
	if e := mathx.RelErr(got.Output, want.Output); e != 0 {
		t.Fatalf("scratch reference differs: %v", e)
	}
}

func TestScratchBuffersReusedAcrossSizes(t *testing.T) {
	// shrinking then growing the token count must not corrupt results
	rng := mathx.NewRNG(24)
	dim := 32
	hcBig, winBig, _, _ := buildMixedCache(t, rng, dim, 30, 30, 10)
	hcSmall, winSmall, _, _ := buildMixedCache(t, rng, dim, 5, 5, 2)
	q := make([]float32, dim)
	rng.NormVec(q, 1)
	var s Scratch
	s.Compressed(q, hcBig, winBig)
	got := s.Compressed(q, hcSmall, winSmall)
	want := Compressed(q, hcSmall, winSmall)
	if e := mathx.RelErr(got.Output, want.Output); e != 0 {
		t.Fatalf("reuse across sizes broke output: %v", e)
	}
	if len(got.Weights) != len(want.Weights) {
		t.Fatalf("stale weights: %d vs %d", len(got.Weights), len(want.Weights))
	}
}

func TestScratchCompressedZeroAllocs(t *testing.T) {
	rng := mathx.NewRNG(25)
	dim := 64
	hc, window, _, _ := buildMixedCache(t, rng, dim, 64, 128, 16)
	q := make([]float32, dim)
	rng.NormVec(q, 1)
	var s Scratch
	s.Compressed(q, hc, window) // warm buffers
	allocs := testing.AllocsPerRun(50, func() {
		s.Compressed(q, hc, window)
	})
	if allocs != 0 {
		t.Fatalf("scratch Compressed allocated %v per run", allocs)
	}
}

func TestScratchUniformZeroAllocs(t *testing.T) {
	rng := mathx.NewRNG(26)
	q, keys, vals := genKV(rng, 128, 64)
	var s Scratch
	s.Uniform(q, keys, vals, quant.K4V2)
	allocs := testing.AllocsPerRun(50, func() {
		s.Uniform(q, keys, vals, quant.K4V2)
	})
	if allocs != 0 {
		t.Fatalf("scratch Uniform allocated %v per run", allocs)
	}
}
