// Package attention implements the attention kernels: an FP16-equivalent
// reference path, a uniform-quantization path (for the Fig. 8 ablations),
// and the compressed-cache path that reads DiffKV unified pages
// (high-precision pages first, then low-precision — mirroring the warp
// iteration order of the paper's CUDA kernel, §6.2) with on-the-fly
// dequantization. It also accounts the HBM bytes each variant touches,
// which gpusim converts to kernel time.
package attention

import (
	"diffkv/internal/kvcache"
	"diffkv/internal/mathx"
	"diffkv/internal/policy"
	"diffkv/internal/quant"
)

// TokenWeight is one token's attention weight, keyed by its original
// position (positions survive compaction inside unified pages).
type TokenWeight struct {
	Pos    int32
	Weight float32
}

// Result is one attention computation over one (query, head) pair.
type Result struct {
	// Output is the attention output vector (length dim).
	Output []float32
	// Weights lists the softmax weight of every token that participated
	// (cached tokens and window tokens).
	Weights []TokenWeight
	// BytesRead is the KV payload+metadata bytes the kernel touched.
	BytesRead int
}

// Reference computes exact attention of query q over uncompressed keys and
// values — the FP16 baseline. keys and vals must have equal length.
// Convenience wrapper allocating a fresh Scratch; hot paths hold their own
// Scratch and call its methods directly.
func Reference(q []float32, keys, vals [][]float32) Result {
	var s Scratch
	return s.Reference(q, keys, vals)
}

// Uniform computes attention with every key/value quantized at one
// precision — the uniform-quantization ablation of Fig. 8 (K8V4, K4V8,
// K8V2, K4V2, K2V4, K4V1 applied to all tokens). Quantization is performed
// per vector exactly as the cache would store it. Convenience wrapper over
// Scratch.Uniform.
func Uniform(q []float32, keys, vals [][]float32, prec quant.Precision) Result {
	var s Scratch
	return s.Uniform(q, keys, vals, prec)
}

// Compressed computes attention over a DiffKV head cache plus the
// uncompressed recent window. High-precision pages are processed first,
// then low-precision pages, then the window (which the real kernel reads
// from the high-precision tier). Convenience wrapper over
// Scratch.Compressed.
func Compressed(q []float32, hc *kvcache.HeadCache, window []policy.WindowToken) Result {
	var s Scratch
	return s.Compressed(q, hc, window)
}

// OutputError returns the relative L2 error of a compressed attention
// output against the reference output — the fidelity signal the accuracy
// model consumes.
func OutputError(compressed, reference []float32) float64 {
	return mathx.RelErr(compressed, reference)
}

// MaxAggregate folds per-query-head weights into per-position significance
// scores using the max operation across the GQA group (paper §4). maxPos is
// the exclusive upper bound on token positions (callers track the sequence
// length); the returned slice is indexed by position, with 0 for positions
// no result touched. Using a position-indexed slice instead of a map keeps
// the score-aggregation path free of hashing and map churn.
func MaxAggregate(results []Result, maxPos int) []float32 {
	if maxPos < 0 {
		maxPos = 0
	}
	agg := make([]float32, maxPos)
	for _, r := range results {
		for _, tw := range r.Weights {
			if tw.Weight > agg[tw.Pos] {
				agg[tw.Pos] = tw.Weight
			}
		}
	}
	return agg
}
