// Package attention implements the attention kernels: an FP16-equivalent
// reference path, a uniform-quantization path (for the Fig. 8 ablations),
// and the compressed-cache path that reads DiffKV unified pages
// (high-precision pages first, then low-precision — mirroring the warp
// iteration order of the paper's CUDA kernel, §6.2) with on-the-fly
// dequantization. It also accounts the HBM bytes each variant touches,
// which gpusim converts to kernel time.
package attention

import (
	"math"

	"diffkv/internal/kvcache"
	"diffkv/internal/mathx"
	"diffkv/internal/policy"
	"diffkv/internal/quant"
)

// TokenWeight is one token's attention weight, keyed by its original
// position (positions survive compaction inside unified pages).
type TokenWeight struct {
	Pos    int32
	Weight float32
}

// Result is one attention computation over one (query, head) pair.
type Result struct {
	// Output is the attention output vector (length dim).
	Output []float32
	// Weights lists the softmax weight of every token that participated
	// (cached tokens and window tokens).
	Weights []TokenWeight
	// BytesRead is the KV payload+metadata bytes the kernel touched.
	BytesRead int
}

// Reference computes exact attention of query q over uncompressed keys and
// values — the FP16 baseline. keys and vals must have equal length.
func Reference(q []float32, keys, vals [][]float32) Result {
	n := len(keys)
	dim := len(q)
	logits := make([]float32, n)
	invSqrt := float32(1 / math.Sqrt(float64(dim)))
	for j := 0; j < n; j++ {
		logits[j] = mathx.Dot(q, keys[j]) * invSqrt
	}
	weights := mathx.Softmax(logits, logits)
	out := make([]float32, dim)
	tw := make([]TokenWeight, n)
	for j := 0; j < n; j++ {
		mathx.Axpy(weights[j], vals[j], out)
		tw[j] = TokenWeight{Pos: int32(j), Weight: weights[j]}
	}
	return Result{
		Output:    out,
		Weights:   tw,
		BytesRead: n * quant.FP16.TokenBytes(dim),
	}
}

// Uniform computes attention with every key/value quantized at one
// precision — the uniform-quantization ablation of Fig. 8 (K8V4, K4V8,
// K8V2, K4V2, K2V4, K4V1 applied to all tokens). Quantization is performed
// per vector exactly as the cache would store it.
func Uniform(q []float32, keys, vals [][]float32, prec quant.Precision) Result {
	n := len(keys)
	dim := len(q)
	logits := make([]float32, n)
	invSqrt := float32(1 / math.Sqrt(float64(dim)))
	kbuf := make([]byte, quant.PackedLen(dim, prec.KeyBits))
	vbuf := make([]byte, quant.PackedLen(dim, prec.ValBits))
	vmeta := make([][2]float32, n)
	vdata := make([][]byte, n)
	for j := 0; j < n; j++ {
		ks, kz := quant.QuantizeInto(keys[j], prec.KeyBits, kbuf)
		logits[j] = quant.DequantDot(q, kbuf, prec.KeyBits, ks, kz) * invSqrt
		vs, vz := quant.QuantizeInto(vals[j], prec.ValBits, vbuf)
		vmeta[j] = [2]float32{vs, vz}
		vdata[j] = append([]byte(nil), vbuf...)
	}
	weights := mathx.Softmax(logits, logits)
	out := make([]float32, dim)
	tw := make([]TokenWeight, n)
	for j := 0; j < n; j++ {
		quant.DequantAxpy(weights[j], vdata[j], prec.ValBits, dim, vmeta[j][0], vmeta[j][1], out)
		tw[j] = TokenWeight{Pos: int32(j), Weight: weights[j]}
	}
	return Result{
		Output:    out,
		Weights:   tw,
		BytesRead: n * prec.TokenBytes(dim),
	}
}

// Compressed computes attention over a DiffKV head cache plus the
// uncompressed recent window. High-precision pages are processed first,
// then low-precision pages, then the window (which the real kernel reads
// from the high-precision tier).
func Compressed(q []float32, hc *kvcache.HeadCache, window []policy.WindowToken) Result {
	dim := len(q)
	invSqrt := float32(1 / math.Sqrt(float64(dim)))

	type ref struct {
		page *kvcache.Page
		slot int
	}
	var refs []ref
	var logits []float32
	var positions []int32
	bytes := 0

	collect := func(level kvcache.Level) {
		hc.ForEachToken(level, func(p *kvcache.Page, slot int) {
			kd, ks, kz := p.KeyData(slot)
			logits = append(logits, quant.DequantDot(q, kd, p.Prec.KeyBits, ks, kz)*invSqrt)
			refs = append(refs, ref{p, slot})
			positions = append(positions, p.Position(slot))
			bytes += p.Prec.TokenBytes(dim)
		})
	}
	collect(kvcache.LevelHi)
	collect(kvcache.LevelLo)

	for _, w := range window {
		logits = append(logits, mathx.Dot(q, w.Key)*invSqrt)
		refs = append(refs, ref{nil, 0})
		positions = append(positions, w.Pos)
		bytes += quant.FP16.TokenBytes(dim)
	}

	weights := mathx.Softmax(logits, logits)
	out := make([]float32, dim)
	tw := make([]TokenWeight, len(weights))
	wi := 0
	for j, r := range refs {
		if r.page != nil {
			vd, vs, vz := r.page.ValData(r.slot)
			quant.DequantAxpy(weights[j], vd, r.page.Prec.ValBits, dim, vs, vz, out)
		} else {
			mathx.Axpy(weights[j], window[wi].Val, out)
			wi++
		}
		tw[j] = TokenWeight{Pos: positions[j], Weight: weights[j]}
	}
	return Result{Output: out, Weights: tw, BytesRead: bytes}
}

// OutputError returns the relative L2 error of a compressed attention
// output against the reference output — the fidelity signal the accuracy
// model consumes.
func OutputError(compressed, reference []float32) float64 {
	return mathx.RelErr(compressed, reference)
}

// MaxAggregate folds per-query-head weights into per-position significance
// scores using the max operation across the GQA group (paper §4), then
// returns position → score.
func MaxAggregate(results []Result) map[int32]float32 {
	agg := make(map[int32]float32)
	for _, r := range results {
		for _, tw := range r.Weights {
			if cur, ok := agg[tw.Pos]; !ok || tw.Weight > cur {
				agg[tw.Pos] = tw.Weight
			}
		}
	}
	return agg
}
