package attention

import (
	"math"

	"diffkv/internal/kvcache"
	"diffkv/internal/mathx"
	"diffkv/internal/policy"
	"diffkv/internal/quant"
)

// Partial is the result of attention over one segment of the sequence in a
// merge-friendly form: the un-normalized weighted value sum, the softmax
// normalizer, and the running max logit (log-sum-exp bookkeeping). This is
// the representation the paper's kernel uses for its sequence-dimension
// parallelization (§6.2): segments are processed by separate thread blocks
// and merged "with minimal computation overhead".
type Partial struct {
	// Acc is Σ_j exp(l_j - MaxLogit) · v_j.
	Acc []float32
	// Denom is Σ_j exp(l_j - MaxLogit).
	Denom float64
	// MaxLogit is the maximum logit seen in this segment.
	MaxLogit float64
	// BytesRead accounts the KV bytes this segment touched.
	BytesRead int
	// Weights carries per-token (position, exp(l-Max)) pairs so callers
	// can reconstruct normalized weights after the merge.
	Weights []TokenWeight
}

// newPartial returns an identity partial (merging with it is a no-op).
func newPartial(dim int) *Partial {
	return &Partial{Acc: make([]float32, dim), MaxLogit: math.Inf(-1)}
}

// addToken folds one (logit, value) pair into the partial, rescaling the
// accumulator when a new max logit arrives.
func (p *Partial) addToken(logit float64, addValue func(w float32, dst []float32), pos int32) {
	if logit > p.MaxLogit {
		if !math.IsInf(p.MaxLogit, -1) {
			scale := float32(math.Exp(p.MaxLogit - logit))
			mathx.Scale(scale, p.Acc)
			p.Denom *= float64(scale)
			for i := range p.Weights {
				p.Weights[i].Weight *= scale
			}
		}
		p.MaxLogit = logit
	}
	w := float32(math.Exp(logit - p.MaxLogit))
	addValue(w, p.Acc)
	p.Denom += float64(w)
	p.Weights = append(p.Weights, TokenWeight{Pos: pos, Weight: w})
}

// Merge folds another partial into p (associative, order-independent up to
// float rounding) — the minimal-overhead reduction of §6.2.
func (p *Partial) Merge(o *Partial) {
	if math.IsInf(o.MaxLogit, -1) {
		return
	}
	if math.IsInf(p.MaxLogit, -1) {
		p.Acc = append(p.Acc[:0], o.Acc...)
		p.Denom = o.Denom
		p.MaxLogit = o.MaxLogit
		p.BytesRead += o.BytesRead
		p.Weights = append(p.Weights, o.Weights...)
		return
	}
	m := math.Max(p.MaxLogit, o.MaxLogit)
	ps := float32(math.Exp(p.MaxLogit - m))
	os := float32(math.Exp(o.MaxLogit - m))
	mathx.Scale(ps, p.Acc)
	for i := range p.Weights {
		p.Weights[i].Weight *= ps
	}
	for i, v := range o.Acc {
		p.Acc[i] += os * v
	}
	base := len(p.Weights)
	p.Weights = append(p.Weights, o.Weights...)
	for i := base; i < len(p.Weights); i++ {
		p.Weights[i].Weight *= os
	}
	p.Denom = p.Denom*float64(ps) + o.Denom*float64(os)
	p.MaxLogit = m
	p.BytesRead += o.BytesRead
}

// Finalize converts the partial into a normalized attention Result.
func (p *Partial) Finalize() Result {
	out := make([]float32, len(p.Acc))
	if p.Denom > 0 {
		inv := float32(1 / p.Denom)
		for i, v := range p.Acc {
			out[i] = v * inv
		}
		for i := range p.Weights {
			p.Weights[i].Weight *= inv
		}
	}
	return Result{Output: out, Weights: p.Weights, BytesRead: p.BytesRead}
}

// CompressedSplit computes the same attention as Compressed but processes
// the cache in `splits` independent sequence segments (each a candidate for
// a separate thread block on the GPU) and merges the partials. Results
// match Compressed up to float rounding; the point is exercising the
// parallel decomposition for ultra-long sequences.
func CompressedSplit(q []float32, hc *kvcache.HeadCache, window []policy.WindowToken, splits int) Result {
	dim := len(q)
	if splits < 1 {
		splits = 1
	}
	invSqrt := float32(1 / math.Sqrt(float64(dim)))

	// collect token accessors in kernel order (hi pages, lo pages, window)
	type tok struct {
		logit float64
		add   func(w float32, dst []float32)
		pos   int32
		bytes int
	}
	var toks []tok
	collect := func(level kvcache.Level) {
		hc.ForEachToken(level, func(pg *kvcache.Page, slot int) {
			kd, ks, kz := pg.KeyData(slot)
			logit := float64(quant.DequantDot(q, kd, pg.Prec.KeyBits, ks, kz) * invSqrt)
			pgc, slotc := pg, slot
			toks = append(toks, tok{
				logit: logit,
				add: func(w float32, dst []float32) {
					vd, vs, vz := pgc.ValData(slotc)
					quant.DequantAxpy(w, vd, pgc.Prec.ValBits, dim, vs, vz, dst)
				},
				pos:   pg.Position(slot),
				bytes: pg.Prec.TokenBytes(dim),
			})
		})
	}
	collect(kvcache.LevelHi)
	collect(kvcache.LevelLo)
	for _, w := range window {
		wc := w
		toks = append(toks, tok{
			logit: float64(mathx.Dot(q, wc.Key) * invSqrt),
			add:   func(wt float32, dst []float32) { mathx.Axpy(wt, wc.Val, dst) },
			pos:   wc.Pos,
			bytes: quant.FP16.TokenBytes(dim),
		})
	}

	if len(toks) == 0 {
		return Result{Output: make([]float32, dim)}
	}
	if splits > len(toks) {
		splits = len(toks)
	}
	partials := make([]*Partial, splits)
	per := (len(toks) + splits - 1) / splits
	mathx.ParallelFor(splits, func(s int) {
		p := newPartial(dim)
		lo, hi := s*per, (s+1)*per
		if lo > len(toks) {
			lo = len(toks)
		}
		if hi > len(toks) {
			hi = len(toks)
		}
		for _, t := range toks[lo:hi] {
			p.addToken(t.logit, t.add, t.pos)
			p.BytesRead += t.bytes
		}
		partials[s] = p
	})
	merged := partials[0]
	for _, p := range partials[1:] {
		merged.Merge(p)
	}
	return merged.Finalize()
}
