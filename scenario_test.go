package diffkv

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenScenario exercises every serializable field of the spec.
var goldenScenario = Scenario{
	Name:              "cluster-swap-demo",
	Model:             "Llama3-8B",
	Method:            "DiffKV",
	MemFrac:           0.3,
	Precision:         &PrecisionSpec{Hi: "K8V4", Lo: "K4V2"},
	Device:            "L40",
	GPUs:              1,
	MaxGenLen:         2048,
	MemoryReserve:     0.9,
	PrefixCacheGroups: 8,
	Preemption:        "swap",
	HostMemoryGB:      4,
	Workload: WorkloadSpec{
		Bench:      "MATH",
		RatePerSec: 8,
		Seconds:    30,
		Prefix:     &PrefixConfig{Groups: 4, PrefixLen: 512, SharedFrac: 0.8},
	},
	BrownoutQueueDepth: 32,
	Cluster: &ClusterSpec{
		Instances:     2,
		Routing:       "prefix-affinity",
		MaxQueueDepth: 64,
		TTFTSLOSec:    2,
		TPOTSLOSec:    0.1,
	},
	Faults: &FaultsSpec{
		Crashes:       []CrashSpec{{Instance: 1, AtSec: 10, DownSec: 5}},
		Slowdowns:     []SlowdownSpec{{Instance: 2, AtSec: 4, DurSec: 6, Factor: 2.5}},
		PCIeErrorRate: 0.01,
		RetryBudget:   3,
		RetryBaseMs:   50,
	},
	Gateway: &GatewaySpec{
		Listen:           "127.0.0.1:8080",
		TimeScale:        1,
		DefaultMaxTokens: 256,
		DrainTimeoutSec:  30,
	},
	Observability: &ObservabilitySpec{
		TraceEvents:  32768,
		PerfettoPath: "trace.json",
		Debug:        true,
	},
	Seed: 42,
}

// TestScenarioGoldenRoundTrip pins the JSON wire format: the canonical
// spec marshals byte-identically to the checked-in golden file, and the
// golden file parses back to the identical value — so specs in the wild
// survive upgrades, or the golden diff makes the break visible in CI.
func TestScenarioGoldenRoundTrip(t *testing.T) {
	path := filepath.Join("testdata", "scenario_golden.json")
	got, err := json.MarshalIndent(&goldenScenario, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run ScenarioGolden -update` to create it)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("scenario JSON drifted from golden:\n got: %s\nwant: %s", got, want)
	}

	parsed, err := ParseScenario(want)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*parsed, goldenScenario) {
		t.Fatalf("golden did not round-trip:\n got %+v\nwant %+v", *parsed, goldenScenario)
	}
	if err := parsed.Validate(); err != nil {
		t.Fatalf("golden scenario invalid: %v", err)
	}
}

// goldenDisaggScenario pins the disaggregation section's wire format
// separately: disaggregation excludes faults, so it cannot ride in
// goldenScenario.
var goldenDisaggScenario = Scenario{
	Name:      "disagg-demo",
	Model:     "Llama3-8B",
	Method:    "DiffKV",
	MemFrac:   0.3,
	MaxGenLen: 256,
	Workload: WorkloadSpec{
		Bench:      "MMLU",
		RatePerSec: 12,
		Seconds:    20,
	},
	Cluster: &ClusterSpec{
		Instances:  4,
		TTFTSLOSec: 2,
		TPOTSLOSec: 0.1,
	},
	Disaggregation: &DisaggSpec{PrefillPool: 2, DecodePool: 2},
	Seed:           7,
}

// TestScenarioDisaggGoldenRoundTrip pins the disaggregation JSON wire
// format the same way TestScenarioGoldenRoundTrip pins the rest of the
// spec, and checks the unset-routing default resolves to disagg-aware.
func TestScenarioDisaggGoldenRoundTrip(t *testing.T) {
	path := filepath.Join("testdata", "scenario_disagg_golden.json")
	got, err := json.MarshalIndent(&goldenDisaggScenario, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run GoldenRoundTrip -update` to create it)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("disagg scenario JSON drifted from golden:\n got: %s\nwant: %s", got, want)
	}

	parsed, err := ParseScenario(want)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*parsed, goldenDisaggScenario) {
		t.Fatalf("golden did not round-trip:\n got %+v\nwant %+v", *parsed, goldenDisaggScenario)
	}
	st, err := parsed.Build()
	if err != nil {
		t.Fatal(err)
	}
	if st.Scenario.Cluster.Routing != RouteDisaggAware {
		t.Fatalf("disaggregation with unset routing must default to %s, got %q",
			RouteDisaggAware, st.Scenario.Cluster.Routing)
	}
}

// TestScenarioStrictParsing: typos must fail loudly, not select defaults.
func TestScenarioStrictParsing(t *testing.T) {
	_, err := ParseScenario([]byte(`{"model": "Llama3-8B", "method": "vLLM",
		"workload": {"bench": "MATH"}, "preemptoin": "swap"}`))
	if err == nil || !strings.Contains(err.Error(), "preemptoin") {
		t.Fatalf("unknown field must be rejected by name, got %v", err)
	}
}

// TestScenarioErrorFieldPaths: strict-parse failures name the dotted
// JSON path of the offending field, however deep it nests.
func TestScenarioErrorFieldPaths(t *testing.T) {
	for _, tc := range []struct {
		name, spec, wantPath string
	}{
		{"nested unknown",
			`{"model": "Llama3-8B", "method": "vLLM",
			  "workload": {"bench": "MATH", "prefix": {"grops": 4}}}`,
			`"workload.prefix.grops"`},
		{"trace element unknown",
			`{"model": "Llama3-8B", "method": "vLLM",
			  "workload": {"trace": [
			    {"id": 1, "prompt_tokens": 64, "gen_tokens": 8},
			    {"id": 2, "prompt_tokens": 64, "gen_tokn": 8}]}}`,
			`"workload.trace[1].gen_tokn"`},
		{"cluster unknown",
			`{"model": "Llama3-8B", "method": "vLLM",
			  "workload": {"bench": "MATH"},
			  "cluster": {"instances": 2, "ruoting": "round-robin"}}`,
			`"cluster.ruoting"`},
		{"type mismatch path",
			`{"model": "Llama3-8B", "method": "vLLM",
			  "workload": {"bench": "MATH", "rate_per_sec": "fast"}}`,
			`"workload.rate_per_sec"`},
		{"observability unknown",
			`{"model": "Llama3-8B", "method": "vLLM",
			  "workload": {"bench": "MATH"},
			  "observability": {"debug": true, "trace_evnts": 100}}`,
			`"observability.trace_evnts"`},
		{"disaggregation unknown",
			`{"model": "Llama3-8B", "method": "DiffKV",
			  "workload": {"bench": "MATH"},
			  "cluster": {"instances": 4},
			  "disaggregation": {"prefil_pool": 2, "decode_pool": 2}}`,
			`"disaggregation.prefil_pool"`},
	} {
		_, err := ParseScenario([]byte(tc.spec))
		if err == nil || !strings.Contains(err.Error(), tc.wantPath) {
			t.Fatalf("%s: error must carry the field path %s, got: %v", tc.name, tc.wantPath, err)
		}
	}
}

// TestScenarioTraceWorkload covers the hand-authored request-list
// workload: verbatim replay in arrival order, no benchmark needed, and
// Build-time rejection of malformed traces — duplicate IDs above all.
func TestScenarioTraceWorkload(t *testing.T) {
	sc := Scenario{Model: "Llama3-8B", Method: "vLLM", MaxGenLen: 64,
		Workload: WorkloadSpec{Trace: []TraceRequest{
			{ID: 2, ArrivalSec: 0.5, PromptTokens: 128, GenTokens: 16},
			{ID: 1, PromptTokens: 256, GenTokens: 8},
		}}}
	st, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if st.Benchmark != nil {
		t.Fatal("trace workloads carry their own shapes; Benchmark must be nil")
	}
	reqs := st.Requests()
	if len(reqs) != 2 || reqs[0].ID != 1 || reqs[1].ID != 2 {
		t.Fatalf("trace not replayed in arrival order: %+v", reqs)
	}
	if reqs[1].ArrivalUs != 0.5e6 || reqs[0].PromptLen != 256 {
		t.Fatalf("trace fields mangled: %+v", reqs)
	}
	res, err := st.Server.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatalf("completed %d", res.Completed)
	}

	for name, mut := range map[string]func(*Scenario){
		"duplicate id": func(s *Scenario) { s.Workload.Trace[1].ID = 2 },
		"zero id":      func(s *Scenario) { s.Workload.Trace[0].ID = 0 },
		"no tokens":    func(s *Scenario) { s.Workload.Trace[0].GenTokens = 0 },
		"neg arrival":  func(s *Scenario) { s.Workload.Trace[0].ArrivalSec = -1 },
		"long prefix":  func(s *Scenario) { s.Workload.Trace[0].PrefixLen = 4096 },
		"trace+bench":  func(s *Scenario) { s.Workload.Bench = "MATH" },
		"trace+rate":   func(s *Scenario) { s.Workload.RatePerSec = 2 },
		"trace+secs":   func(s *Scenario) { s.Workload.Seconds = 30 },
	} {
		bad := sc
		bad.Workload.Trace = append([]TraceRequest(nil), sc.Workload.Trace...)
		mut(&bad)
		if _, err := bad.Build(); err == nil {
			t.Fatalf("%s: invalid trace passed Build", name)
		}
	}
}

// TestScenarioValidation sweeps the name-resolution failure modes.
func TestScenarioValidation(t *testing.T) {
	base := Scenario{Model: "Llama3-8B", Method: "vLLM", Workload: WorkloadSpec{Bench: "MATH"}}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string]func(*Scenario){
		"model":     func(s *Scenario) { s.Model = "GPT-5" },
		"method":    func(s *Scenario) { s.Method = "NoSuch" },
		"bench":     func(s *Scenario) { s.Workload.Bench = "NoSuch" },
		"device":    func(s *Scenario) { s.Device = "H100" },
		"precision": func(s *Scenario) { s.Precision = &PrecisionSpec{Hi: "K8V4"} }, // vLLM has no pipeline
		"routing": func(s *Scenario) {
			s.Cluster = &ClusterSpec{Instances: 2, Routing: "NoSuch"}
		},
		"preempt": func(s *Scenario) { s.Preemption = "NoSuch" },
		"badprec": func(s *Scenario) { s.Method = "DiffKV"; s.Precision = &PrecisionSpec{Hi: "K7V3"} },
		"cot-rate": func(s *Scenario) {
			s.Workload.CoT = true
			s.Workload.RatePerSec = 4
		},
		"cot-prefix": func(s *Scenario) {
			s.Workload.CoT = true
			s.Workload.Prefix = &PrefixConfig{Groups: 2, PrefixLen: 128, SharedFrac: 0.5}
		},
		"faults-no-cluster": func(s *Scenario) {
			s.Faults = &FaultsSpec{Crashes: []CrashSpec{{Instance: 1, AtSec: 1}}}
		},
		"faults-bad-instance": func(s *Scenario) {
			s.Cluster = &ClusterSpec{Instances: 2}
			s.Faults = &FaultsSpec{Crashes: []CrashSpec{{Instance: 5, AtSec: 1}}}
		},
		"faults-bad-error-rate": func(s *Scenario) {
			s.Cluster = &ClusterSpec{Instances: 2}
			s.Faults = &FaultsSpec{PCIeErrorRate: 1.5}
		},
		"disagg-no-cluster": func(s *Scenario) {
			s.Disaggregation = &DisaggSpec{PrefillPool: 1, DecodePool: 1}
		},
		"disagg-with-faults": func(s *Scenario) {
			s.Cluster = &ClusterSpec{Instances: 4}
			s.Disaggregation = &DisaggSpec{PrefillPool: 2, DecodePool: 2}
			s.Faults = &FaultsSpec{Crashes: []CrashSpec{{Instance: 1, AtSec: 1}}}
		},
		"disagg-pool-overflow": func(s *Scenario) {
			s.Cluster = &ClusterSpec{Instances: 2}
			s.Disaggregation = &DisaggSpec{PrefillPool: 2, DecodePool: 2}
		},
	} {
		sc := base
		mut(&sc)
		if err := sc.Validate(); err == nil {
			t.Fatalf("%s: invalid spec passed validation", name)
		}
	}
}

// TestScenarioBuildShapes checks the single-instance / cluster split and
// deterministic workload sampling.
func TestScenarioBuildShapes(t *testing.T) {
	single := Scenario{Model: "Llama3-8B", Method: "vLLM", MaxGenLen: 64,
		Workload: WorkloadSpec{Bench: "GSM8K", Requests: 4}, Seed: 5}
	st, err := single.Build()
	if err != nil {
		t.Fatal(err)
	}
	if st.Server == nil || st.Cluster != nil {
		t.Fatal("single-instance spec must build a Server")
	}
	r1, r2 := st.Requests(), st.Requests()
	if len(r1) != 4 || !reflect.DeepEqual(r1, r2) {
		t.Fatalf("workload sampling not deterministic: %v vs %v", r1, r2)
	}
	res, err := st.Server.Run(r1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 4 {
		t.Fatalf("completed %d", res.Completed)
	}

	// a second Build is a fresh stack (servers serve one run)
	st2, err := single.Build()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Server == st.Server {
		t.Fatal("Build must return fresh stacks")
	}

	// precision override reaches the manager
	prec := Scenario{Model: "Llama3-8B", Method: "DiffKV", MaxGenLen: 64,
		Precision: &PrecisionSpec{Hi: "K8V8", Lo: "K4V4"},
		Workload:  WorkloadSpec{Bench: "GSM8K", Requests: 2}, Seed: 5}
	if _, err := prec.Build(); err != nil {
		t.Fatal(err)
	}
}

// TestScenarioFaultsDeterministic: a chaos scenario is an experiment
// like any other — building and running the same spec twice reproduces
// the identical metrics, crashes included, and every dispatched request
// reaches a terminal state.
func TestScenarioFaultsDeterministic(t *testing.T) {
	sc := Scenario{Model: "Llama3-8B", Method: "vLLM", MaxGenLen: 256,
		Workload: WorkloadSpec{Bench: "MATH", Requests: 16},
		Cluster:  &ClusterSpec{Instances: 2, Routing: "least-loaded"},
		Faults: &FaultsSpec{
			Crashes: []CrashSpec{{Instance: 1, AtSec: 1, DownSec: 2}},
		},
		Seed: 9,
	}
	run := func() ClusterMetrics {
		st, err := sc.Build()
		if err != nil {
			t.Fatal(err)
		}
		m, err := st.Cluster.Run(st.Requests())
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.Crashes != 1 || a.Restarts != 1 {
		t.Fatalf("crashes/restarts %d/%d, want 1/1", a.Crashes, a.Restarts)
	}
	if a.Stuck() != 0 {
		t.Fatalf("liveness violated: %d requests unaccounted", a.Stuck())
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("chaos scenario not reproducible:\n got %+v\nand %+v", a, b)
	}
}
