package diffkv

import (
	"testing"
)

func TestPublicEngineQuickstart(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Model:  Llama3_8B,
		Params: DefaultParams("Llama3-8B"),
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunSequence(192, 96, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemFrac <= 0 || res.MemFrac >= 1 {
		t.Fatalf("MemFrac = %v", res.MemFrac)
	}
	if res.OutputErr < 0 || res.OutputErr > 1 {
		t.Fatalf("OutputErr = %v", res.OutputErr)
	}
}

func TestPublicModelLookup(t *testing.T) {
	m, err := ModelByName("QwQ-32B")
	if err != nil || m != QwQ_32B {
		t.Fatal("lookup failed")
	}
	if len(Models) < 8 {
		t.Fatalf("model zoo has %d entries", len(Models))
	}
}

func TestPublicBenchmarkLookup(t *testing.T) {
	b, err := BenchmarkByName("AIME24")
	if err != nil || b != BenchAIME24 {
		t.Fatal("benchmark lookup failed")
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	want := map[string]bool{}
	for _, id := range []string{"fig2", "fig3", "fig4", "fig5", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"tab1", "tab2", "tab3"} {
		want[id] = true
	}
	for _, id := range ids {
		delete(want, id)
	}
	if len(want) != 0 {
		t.Fatalf("missing experiments: %v", want)
	}
	if _, err := RunExperiment("no-such", ExperimentOpts{}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestPublicServerSmoke(t *testing.T) {
	traits, err := TraitsFor("vLLM", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Model:   Llama3_8B,
		Cluster: NewCluster(L40(), 1),
		Traits:  traits,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := NewRequestGen(BenchGSM8K, 256, 3).Batch(4)
	res, err := srv.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 4 {
		t.Fatalf("completed %d", res.Completed)
	}
}

func TestTraitsForRejectsUnknownMethod(t *testing.T) {
	if _, err := TraitsFor("NoSuchMethod", 0); err == nil {
		t.Fatal("unknown method must error, not silently map to vLLM")
	}
	for _, m := range Methods() {
		if _, err := TraitsFor(m, 0.3); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

func TestPublicClusterSmoke(t *testing.T) {
	traits, err := TraitsFor("vLLM", 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ClusterServerConfig{
		Instances: 2,
		Policy:    RoutePrefixAffinity,
		Seed:      5,
	}
	cfg.Engine.Model = Llama3_8B
	cfg.Engine.Cluster = NewCluster(L40(), 1)
	cfg.Engine.Traits = traits
	cfg.Engine.MaxGenLen = 128
	cfg.Engine.PrefixCacheGroups = 4
	cs, err := NewClusterServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := NewRequestGen(BenchMMLU, 128, 5).
		PoissonShared(4, 10, PrefixConfig{Groups: 3, PrefixLen: 512, SharedFrac: 0.8})
	if len(reqs) == 0 {
		t.Skip("no arrivals drawn")
	}
	m, err := cs.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Stuck() != 0 {
		t.Fatalf("%d requests stuck", m.Stuck())
	}
	if m.Completed != len(reqs) {
		t.Fatalf("completed %d of %d", m.Completed, len(reqs))
	}
}

func TestDefaultParamsPerFamily(t *testing.T) {
	if DefaultParams("Qwen2.5-7B").DisableLow != true {
		t.Fatal("Qwen2.5-7B must disable the low tier")
	}
	if DefaultParams("QwQ-32B").AlphaH != 3 {
		t.Fatal("QwQ-32B αh should be 3")
	}
}
