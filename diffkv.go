// Package diffkv is the public API of the DiffKV reproduction: a
// differentiated KV-cache compression and memory-management system for LLM
// serving (Zhang et al., SOSP 2025), built on a calibrated simulation
// substrate (see DESIGN.md).
//
// The package exposes three layers:
//
//   - the compression engine (NewEngine / Engine.RunSequence): runs the
//     full DiffKV pipeline — prompt-phase classification, Algorithm 1
//     generation-phase compression, paged storage, compressed attention —
//     and reports fidelity and memory;
//   - the serving simulator (NewServer / Server.Run): continuous batching
//     with the real counts-mode page manager and the GPU cost model;
//   - the experiment harnesses (RunExperiment): regenerate every table and
//     figure of the paper's evaluation.
//
// Quick start:
//
//	eng, _ := diffkv.NewEngine(diffkv.EngineConfig{
//	    Model:  diffkv.Llama3_8B,
//	    Params: diffkv.DefaultParams("Llama3-8B"),
//	})
//	res, _ := eng.RunSequence(512, 512, 1)
//	fmt.Printf("error %.3f at %.0f%% memory\n", res.OutputErr, 100*res.MemFrac)
package diffkv

import (
	"fmt"

	"diffkv/internal/baselines"
	"diffkv/internal/cluster"
	"diffkv/internal/core"
	"diffkv/internal/disagg"
	"diffkv/internal/experiments"
	"diffkv/internal/faults"
	"diffkv/internal/gpusim"
	"diffkv/internal/offload"
	"diffkv/internal/policy"
	"diffkv/internal/quant"
	"diffkv/internal/serving"
	"diffkv/internal/synth"
	"diffkv/internal/telemetry"
	"diffkv/internal/trace"
	"diffkv/internal/workload"
)

// Model describes a served model's architecture (layers, KV heads, GQA
// ratio, head dimension).
type Model = synth.ModelConfig

// The model zoo evaluated in the paper.
var (
	Llama3_8B  = synth.Llama3_8B
	Llama31_8B = synth.Llama31_8B
	Llama3_70B = synth.Llama3_70B
	Qwen25_7B  = synth.Qwen25_7B
	Qwen25_32B = synth.Qwen25_32B
	QwQ_32B    = synth.QwQ_32B
	R1Qwen_14B = synth.R1Qwen_14B
	R1Llama_8B = synth.R1Llama_8B
)

// Models lists every configured model.
var Models = synth.Models

// ModelByName looks a model up by display name (e.g. "Llama3-8B").
func ModelByName(name string) (*Model, error) { return synth.ModelByName(name) }

// Precision is a differentiated key/value bit-width configuration.
type Precision = quant.Precision

// Standard precision tiers.
var (
	FP16 = quant.FP16
	K8V8 = quant.K8V8
	K8V4 = quant.K8V4
	K4V2 = quant.K4V2
	K8V2 = quant.K8V2
	K4V4 = quant.K4V4
)

// PolicyParams are the calibrated compression-policy thresholds
// (αh, αl, recent window W).
type PolicyParams = policy.Params

// DefaultParams returns the calibrated parameters for a model name
// (paper Fig. 10).
func DefaultParams(model string) PolicyParams { return policy.ParamsForModel(model) }

// EngineConfig parameterizes the compression engine.
type EngineConfig = core.Config

// Engine runs the full DiffKV pipeline on synthetic sequences.
type Engine = core.Engine

// SequenceResult reports one sequence's fidelity, memory fraction and
// tier breakdown.
type SequenceResult = core.SequenceResult

// NewEngine builds a compression engine.
func NewEngine(cfg EngineConfig) (*Engine, error) { return core.NewEngine(cfg) }

// Benchmark is one evaluation workload profile.
type Benchmark = workload.Benchmark

// The benchmark suites of the paper's evaluation.
var (
	BenchGSM8K     = workload.GSM8K
	BenchMATH      = workload.MATH
	BenchMMLU      = workload.MMLU
	BenchMMLUPro   = workload.MMLUPro
	BenchHumanEval = workload.HumanEvalPlus
	BenchMBPP      = workload.MBPPPlus
	BenchGPQA      = workload.GPQA
	BenchAIME24    = workload.AIME24

	CoreBenchmarks     = workload.CoreBenchmarks
	ThinkingBenchmarks = workload.ThinkingBenchmarks
	LongBench          = workload.LongBench
)

// BenchmarkByName finds a benchmark across all suites.
func BenchmarkByName(name string) (*Benchmark, error) { return workload.ByName(name) }

// ServerConfig parameterizes the serving simulator.
type ServerConfig = serving.Config

// Server is the discrete-event serving engine.
type Server = serving.Engine

// ServingResult aggregates throughput, batch size, latency and the
// per-component step breakdown.
type ServingResult = serving.Result

// NewServer builds a serving engine.
func NewServer(cfg ServerConfig) (*Server, error) { return serving.NewEngine(cfg) }

// Device is the GPU hardware model; L40 is the paper's evaluation GPU.
type Device = gpusim.Device

// L40 returns the NVIDIA L40 device model (48 GB).
func L40() *Device { return gpusim.L40() }

// NewCluster groups n identical devices into a tensor-parallel cluster.
func NewCluster(d *Device, n int) *gpusim.Cluster { return gpusim.NewCluster(d, n) }

// Request is one serving request.
type Request = workload.Request

// NewRequestGen samples serving requests from a benchmark profile.
func NewRequestGen(b *Benchmark, maxGenLen int, seed uint64) *workload.RequestGen {
	return workload.NewRequestGen(b, maxGenLen, seed)
}

// ServingTraits describe how a compression method behaves inside the
// serving engine (resident memory, attention bytes, host overheads).
type ServingTraits = baselines.ServingTraits

// Method describes a compression method to the serving layers: a name
// plus the ServingTraits driving the serving cost model. Implement it —
// optionally together with CompressionHook — and register with
// RegisterMethod to run a custom method through servers, clusters and
// scenarios without touching internals.
type Method = baselines.ServingMethod

// CompressionSetup carries the engine knobs of methods that run a real
// compression pipeline (page manager, tier fractions) beyond traits.
type CompressionSetup = baselines.CompressionSetup

// CompressionHook is optionally implemented by Methods backed by a real
// compression pipeline; scenario building consults it so the method —
// not the caller — decides how the serving engine is configured.
type CompressionHook = baselines.CompressionHook

// RegisterMethod adds a serving method to the registry. Names must be
// non-empty and unique; the builtin paper methods are pre-registered.
func RegisterMethod(m Method) error { return baselines.RegisterServingMethod(m) }

// MethodByName looks a registered serving method up by name.
func MethodByName(name string) (Method, error) { return baselines.ServingMethodByName(name) }

// Methods lists registered serving method names — the builtins ("vLLM",
// "Quest", "SnapKV", "Atom", "KIVI", "DiffKV") followed by third-party
// registrations, derived from the registry.
func Methods() []string { return baselines.ServingMethods() }

// TraitsFor returns the serving traits of a named registered method.
// diffKVMemFrac is DiffKV's measured resident memory fraction (ignored
// by fixed-trait methods; <= 0 selects DiffKV's 0.3 default).
//
// Deprecated: TraitsFor is a shim over the method registry. Use
// MethodByName(name).ServingTraits(memFrac), or skip traits entirely and
// build from a Scenario.
func TraitsFor(name string, diffKVMemFrac float64) (ServingTraits, error) {
	m, err := MethodByName(name)
	if err != nil {
		return ServingTraits{}, fmt.Errorf("diffkv: %w", err)
	}
	return m.ServingTraits(diffKVMemFrac), nil
}

// ExperimentOpts tune experiment cost (repetitions, fast mode, seed).
type ExperimentOpts = experiments.Opts

// ResultTable is a formatted experiment result.
type ResultTable = experiments.Table

// RunExperiment regenerates one of the paper's tables or figures by ID
// (fig2..fig17, tab1..tab3).
func RunExperiment(id string, o ExperimentOpts) ([]*ResultTable, error) {
	return experiments.Run(id, o)
}

// ExperimentIDs lists the available experiment IDs.
func ExperimentIDs() []string { return experiments.IDs() }

// ClusterServerConfig parameterizes the multi-instance cluster simulator:
// N serving engines behind a router with a pluggable routing policy,
// admission control and SLO accounting.
type ClusterServerConfig = cluster.Config

// ClusterServer runs N serving instances behind a router.
type ClusterServer = cluster.Cluster

// ClusterMetrics aggregates one cluster run: TTFT/TPOT/E2E percentiles,
// goodput, per-instance utilization and load imbalance.
type ClusterMetrics = cluster.Metrics

// Routing policies for ClusterServerConfig.Policy.
//
// Deprecated: these consts are shims over the routing-policy registry;
// any name reported by RoutingPolicies (including runtime registrations
// via RegisterRoutingPolicy) is valid.
const (
	RouteRoundRobin     = cluster.PolicyRoundRobin
	RouteLeastLoaded    = cluster.PolicyLeastLoaded
	RoutePrefixAffinity = cluster.PolicyPrefixAffinity
	RouteDisaggAware    = cluster.PolicyDisaggAware
)

// DisaggPools sizes the prefill and decode pools of a disaggregated
// cluster (ClusterServerConfig.Disagg): instances [0, Prefill) run
// prompt passes, the next Decode instances adopt shipped prefills, any
// remainder serves mixed.
type DisaggPools = disagg.Config

// DisaggMetrics summarizes a disaggregated run's cross-instance KV
// shipments (ClusterMetrics.Disagg; nil without disaggregation).
type DisaggMetrics = cluster.DisaggMetrics

// InstanceRole tags a serving instance's disaggregation pool.
type InstanceRole = disagg.Role

// Instance pool roles of a disaggregated cluster.
const (
	RolePrefill = disagg.RolePrefill
	RoleDecode  = disagg.RoleDecode
	RoleMixed   = disagg.RoleMixed
)

// RoutingPolicy picks a target instance for each request from routable
// instance snapshots. Implementations must be deterministic.
type RoutingPolicy = cluster.Policy

// RoutingSnapshot is the router's view of one serving instance at
// dispatch time (queue depth, running count, resident/swapped tokens).
type RoutingSnapshot = cluster.Snapshot

// RoutingPolicyFactory builds a fresh policy instance per cluster —
// routing policies are stateful (cursors, prefix indexes), so the
// registry holds factories.
type RoutingPolicyFactory = cluster.PolicyFactory

// RegisterRoutingPolicy adds a routing policy factory under name; the
// name becomes valid in ClusterServerConfig.Policy and Scenario specs.
func RegisterRoutingPolicy(name string, f RoutingPolicyFactory) error {
	return cluster.RegisterPolicy(name, f)
}

// RoutingPolicies lists registered routing policy names — builtins
// followed by third-party registrations, derived from the registry.
func RoutingPolicies() []string { return cluster.Policies() }

// NewClusterServer builds a multi-instance cluster simulator.
func NewClusterServer(cfg ClusterServerConfig) (*ClusterServer, error) {
	return cluster.New(cfg)
}

// ServingCompletion is one finished request with its TTFT/TPOT-defining
// timestamps plus per-request preemption count and retry timestamps,
// returned by the steppable Server API (Server.Step).
type ServingCompletion = serving.Completion

// Preemption recovery policies for ServerConfig.PreemptPolicy: what the
// engine does with a victim when it runs out of KV pages. Swap policies
// require UseManager and ServerConfig.HostMemoryBytes > 0.
//
// Deprecated: these consts are shims over the preemption-policy
// registry; any name reported by PreemptPolicies (including runtime
// registrations via RegisterPreemptPolicy) is valid.
const (
	PreemptRecompute    = offload.PolicyRecompute
	PreemptSwap         = offload.PolicySwap
	PreemptCompressSwap = offload.PolicyCompressSwap
)

// PreemptRecoveryPolicy picks the victim and recovery action when a
// serving step runs out of KV pages. Implementations must be
// deterministic.
type PreemptRecoveryPolicy = offload.RecoveryPolicy

// PreemptVictim describes one preemption candidate to a recovery policy.
type PreemptVictim = offload.Victim

// PreemptRecovery is the recovery action of a preemption policy.
type PreemptRecovery = offload.Recovery

// Recovery actions a custom PreemptRecoveryPolicy can return.
const (
	RecoverRecompute    = offload.RecoverRecompute
	RecoverSwap         = offload.RecoverSwap
	RecoverCompressSwap = offload.RecoverCompressSwap
)

// PreemptPolicyFactory builds a fresh recovery policy instance per
// serving engine.
type PreemptPolicyFactory = offload.PolicyFactory

// RegisterPreemptPolicy adds a preemption recovery policy factory under
// name; the name becomes valid in ServerConfig.PreemptPolicy and
// Scenario specs.
func RegisterPreemptPolicy(name string, f PreemptPolicyFactory) error {
	return offload.RegisterPolicy(name, f)
}

// PreemptPolicies lists registered preemption recovery policy names —
// builtins followed by third-party registrations, derived from the
// registry.
func PreemptPolicies() []string { return offload.Policies() }

// OffloadMetrics snapshots host-tier activity (swap bytes each way,
// thrashing, prefix spillover hits), reported in ServingResult.Offload.
type OffloadMetrics = offload.Metrics

// PrefixConfig parameterizes shared-prompt-prefix sampling
// (RequestGen.NextShared / PoissonShared): production traffic concentrates
// on a few system prompts, which prefix-affinity routing exploits.
type PrefixConfig = workload.PrefixConfig

// Tracer receives serving-engine events (admissions, preemptions,
// completions, step timings); TraceCollector is the bounded in-memory
// implementation.
type Tracer = trace.Tracer

// TraceCollector is a bounded in-memory tracer with summarization and
// JSONL export.
type TraceCollector = trace.Collector

// NewTraceCollector creates a collector holding at most capacity events
// (<=0 selects the default, 65536).
func NewTraceCollector(capacity int) *TraceCollector { return trace.NewCollector(capacity) }

// TraceEvent is one traced occurrence (see the trace package's Kind
// constants for the event vocabulary).
type TraceEvent = trace.Event

// TraceKind classifies a TraceEvent.
type TraceKind = trace.Kind

// The trace event vocabulary, re-exported so event streams can be
// filtered without importing the internal trace package.
const (
	TraceKindOpen          = trace.KindOpen
	TraceKindAdmit         = trace.KindAdmit
	TraceKindFirstToken    = trace.KindFirstToken
	TraceKindPromptStep    = trace.KindPromptStep
	TraceKindGenStep       = trace.KindGenStep
	TraceKindPreempt       = trace.KindPreempt
	TraceKindSwapOut       = trace.KindSwapOut
	TraceKindSwapIn        = trace.KindSwapIn
	TraceKindHostPrefixHit = trace.KindHostPrefixHit
	TraceKindComplete      = trace.KindComplete
	TraceKindCancel        = trace.KindCancel
	TraceKindDispatch      = trace.KindDispatch
	TraceKindReject        = trace.KindReject
	TraceKindHealth        = trace.KindHealth
	TraceKindRetry         = trace.KindRetry
	TraceKindRecover       = trace.KindRecover
	TraceKindFail          = trace.KindFail
	TraceKindAlert         = trace.KindAlert
)

// TracePhase classifies where a request's lifecycle time is spent; the
// phase constants cover queue, prefill, decode and the preemption
// phases stall / swapped.
type TracePhase = trace.Phase

// Lifecycle phases of PhaseBreakdown (exactly one is active at any
// instant of a request's life).
const (
	PhaseQueue   = trace.PhaseQueue
	PhasePrefill = trace.PhasePrefill
	PhaseDecode  = trace.PhaseDecode
	PhaseStall   = trace.PhaseStall
	PhaseSwapped = trace.PhaseSwapped
)

// PhaseBreakdown attributes a request's end-to-end latency across
// lifecycle phases; its buckets sum to completion minus arrival.
type PhaseBreakdown = trace.PhaseBreakdown

// TraceSpan is one node of a request's reconstructed span tree.
type TraceSpan = trace.Span

// TraceRequestSpans is the reconstructed lifecycle of one request: its
// root span plus the phase-attributed latency breakdown.
type TraceRequestSpans = trace.RequestSpans

// BuildRequestSpans regroups a trace event stream into one span tree
// per request (see trace.BuildRequestSpans).
func BuildRequestSpans(events []TraceEvent) []*TraceRequestSpans {
	return trace.BuildRequestSpans(events)
}

// Session is a per-request streaming handle over the serving engine:
// Server.Open (or ClusterServer.Open) submits the request and returns
// the handle; token progress streams through its OnToken callback while
// the engine is driven (Step / Drain / DrainContext); cancelling it —
// explicitly or via the Open context — frees the request's KV pages and
// host-tier state immediately instead of finishing the generation.
type Session = serving.Session

// TokenUpdate is one token-progress notification delivered to a
// Session's OnToken callback.
type TokenUpdate = serving.TokenUpdate

// ErrSessionCancelled is the terminal error of a cancelled Session.
var ErrSessionCancelled = serving.ErrCancelled

// ErrClusterSaturated is returned by ClusterServer.Open when admission
// control sheds the request (every instance at the queue bound).
var ErrClusterSaturated = cluster.ErrAllSaturated

// ErrRequestFailed is the terminal error of a Session whose request was
// lost to an instance crash and whose re-dispatch retry budget ran out
// (fault injection only; see FaultPlan).
var ErrRequestFailed = serving.ErrFailed

// FaultPlan declares deterministic fault injection for a cluster run:
// scheduled or rate-sampled instance crashes (with optional restarts),
// transient slowdowns, a PCIe transfer error rate, and the re-dispatch
// retry budget. Attach via ClusterServerConfig.Faults or a Scenario's
// "faults" section; the same plan and seed always reproduce the same
// timeline.
type FaultPlan = faults.Plan

// FaultCrash schedules one instance crash in a FaultPlan (1-based
// instance; DownSec <= 0 makes it permanent).
type FaultCrash = faults.Crash

// FaultSlowdown schedules one transient degraded window in a FaultPlan:
// the instance keeps serving with its step time multiplied by Factor.
type FaultSlowdown = faults.Slowdown

// InstanceHealthState is an instance's fault-injection health as
// reported by cluster metrics and the gateway's /healthz.
type InstanceHealthState = cluster.Health

// Instance health states under fault injection.
const (
	InstanceHealthy  = cluster.Healthy
	InstanceDegraded = cluster.Degraded
	InstanceDown     = cluster.Down
)

// Loop is the always-on driver of the serving API: it owns a Server's
// (or ClusterServer's) step cadence in a background goroutine, makes
// Open safe from many goroutines, paces steps against simulated time
// (LoopConfig.TimeScale) and drains gracefully through Shutdown — the
// concurrency boundary the HTTP gateway, and any other network
// front-end, builds on. Construct with NewLoop or Stack.StartLoop.
type Loop = serving.Loop

// LoopConfig parameterizes a Loop (time pacing, idle poll interval).
type LoopConfig = serving.LoopConfig

// LoopDriver is the steppable surface a Loop drives; *Server and
// *ClusterServer both implement it.
type LoopDriver = serving.Driver

// LoopMetrics snapshots a running Loop: loop-level TTFT/TPOT/E2E
// latency distributions plus the driver's counters (LoopDriverStats).
type LoopMetrics = serving.LoopMetrics

// LoopDriverStats is the driver-level counter snapshot inside
// LoopMetrics (queue depth, KV page occupancy, preemptions, offload
// traffic, throughput/goodput).
type LoopDriverStats = serving.DriverStats

// LoopLatencyStats summarizes one latency distribution in seconds.
type LoopLatencyStats = serving.LatencyStats

// ErrLoopShutdown is returned by Loop.Open once Shutdown has begun.
var ErrLoopShutdown = serving.ErrLoopShutdown

// NewLoop starts an always-on driving loop over a Server or
// ClusterServer. The caller must eventually call Shutdown to stop the
// background goroutine.
func NewLoop(d LoopDriver, cfg LoopConfig) *Loop { return serving.NewLoop(d, cfg) }

// TelemetryCenter is the cluster-level observability core: per-instance
// time-series rings sampled on a sim-time cadence, mergeable latency
// histograms, a saturation analyzer with hysteretic scale advisories,
// and multi-window SLO burn-rate alerts. Attach one to
// LoopConfig.Telemetry (always-on serving) or
// ClusterServerConfig.Telemetry (batch runs) — exactly one of the two.
type TelemetryCenter = telemetry.Center

// TelemetryConfig parameterizes a TelemetryCenter (cadence, ring
// capacity, alert tracer, saturation tuning, SLOs).
type TelemetryConfig = telemetry.Config

// NewTelemetryCenter builds a telemetry center.
func NewTelemetryCenter(cfg TelemetryConfig) *TelemetryCenter { return telemetry.New(cfg) }

// TelemetrySnapshot is the full telemetry state at one instant — the
// payload of the gateway's /debug/telemetry route and diffkv-top's
// input.
type TelemetrySnapshot = telemetry.Snapshot

// TelemetryAlert is one emitted saturation advisory or SLO burn-rate
// transition (also mirrored as an "alert" trace event).
type TelemetryAlert = telemetry.Alert

// SLOSpec declares one service-level objective for the telemetry
// center: a latency percentile target (ttft/tpot/e2e) or a goodput
// floor, evaluated as multi-window burn rates over sim time.
type SLOSpec = telemetry.SLOSpec

// SLOStatus is one objective's evaluated burn-rate state.
type SLOStatus = telemetry.SLOStatus

// SaturationConfig tunes the saturation analyzer: headroom waterlines,
// hysteresis hold counts, advisory cooldown and the trend window.
type SaturationConfig = telemetry.SatConfig

// ReplayTelemetry reconstructs an offline telemetry snapshot from a
// recorded trace event stream (queue/running occupancy, latency
// histograms, swap totals and the alert timeline; capacity-derived
// fields are unavailable offline).
func ReplayTelemetry(events []TraceEvent) TelemetrySnapshot { return telemetry.Replay(events) }
