module diffkv

go 1.24
