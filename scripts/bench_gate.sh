#!/usr/bin/env bash
# bench_gate.sh — kernel perf regression gate for CI.
#
# Picks the most recent checked-in perf snapshot (BENCH_PR<N>.json with
# the highest N) and runs `diffkv-bench -gate` against it: each kernel
# micro-benchmark is re-measured (best of three) and the build fails if
# any kernel is more than the tolerance slower than the snapshot after
# normalizing out the suite-wide host-speed shift (shared CI hosts drift
# uniformly run to run; the median now/base ratio cancels that).
#
# Usage: scripts/bench_gate.sh [tolerance]
#   tolerance  fractional slowdown allowed per kernel (default 0.20)

set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE="${1:-0.20}"

baseline=$(ls BENCH_PR*.json 2>/dev/null | sort -V | tail -n 1)
if [[ -z "${baseline}" ]]; then
    echo "bench_gate: no BENCH_PR*.json snapshot found" >&2
    exit 1
fi

echo "bench_gate: comparing kernels against ${baseline} (tolerance ${TOLERANCE})"
go run ./cmd/diffkv-bench -gate "${baseline}" -gate-tolerance "${TOLERANCE}"
