#!/usr/bin/env bash
# Chaos smoke test: run the checked-in chaos scenario (pinned crashes,
# a slowdown window, swap recovery on a 3-instance cluster) through
# diffkv-cluster twice and require bit-identical output — deterministic
# fault injection — then walk the fault report out of the trace and
# crash an instance under a live gateway, verifying the health,
# metrics, and drain surfaces. Run from the repository root; CI runs
# this after the unit tests.
set -euo pipefail

ADDR="${CHAOS_GATEWAY_ADDR:-127.0.0.1:8179}"
TMP="$(mktemp -d)"
trap 'kill -9 "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT
PID=""

go build -o "$TMP/diffkv-cluster" ./cmd/diffkv-cluster
go build -o "$TMP/diffkv-trace" ./cmd/diffkv-trace
go build -o "$TMP/diffkv-gateway" ./cmd/diffkv-gateway

# same scenario + seed twice: the failure timeline, completion set and
# metrics must be bit-identical
"$TMP/diffkv-cluster" -scenario testdata/scenario_chaos.json -trace "$TMP/events.jsonl" \
    | tee "$TMP/run1.txt"
"$TMP/diffkv-cluster" -scenario testdata/scenario_chaos.json -trace "$TMP/events2.jsonl" \
    > "$TMP/run2.txt"
# the trace line names its output file; everything else must match
diff <(grep -v '^  trace:' "$TMP/run1.txt") <(grep -v '^  trace:' "$TMP/run2.txt")
cmp "$TMP/events.jsonl" "$TMP/events2.jsonl"

# the fault machinery visibly ran and liveness held
grep -q 'faults: .* crashes' "$TMP/run1.txt"
if grep -q 'WARNING' "$TMP/run1.txt"; then
  echo "chaos smoke: liveness violation reported" >&2
  exit 1
fi

# the offline analyzer reconstructs downtime windows and the retry ledger
"$TMP/diffkv-trace" "$TMP/events.jsonl" | tee "$TMP/report.txt"
grep -q 'fault injection:' "$TMP/report.txt"
grep -q 'down ' "$TMP/report.txt"

# live gateway: instance 1 crashes at t=0 and stays down; the survivor
# serves, /healthz degrades, /metrics counts the crash
"$TMP/diffkv-gateway" -scenario testdata/scenario_chaos_gateway.json -listen "$ADDR" &
PID=$!
for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done

# a completion must still succeed on the surviving instance
COMP="$(curl -fsS --max-time 60 \
  -d '{"prompt": "chaos smoke", "max_tokens": 8}' \
  "http://$ADDR/v1/completions")"
printf '%s\n' "$COMP" | grep -q '"finish_reason"'

HEALTH="$(curl -fsS "http://$ADDR/healthz")"
echo "$HEALTH"
printf '%s\n' "$HEALTH" | grep -q '"status":"degraded"'
printf '%s\n' "$HEALTH" | grep -q '"instances_up":1'
printf '%s\n' "$HEALTH" | grep -q '"health":"down"'

METRICS="$(curl -fsS "http://$ADDR/metrics")"
printf '%s\n' "$METRICS" | grep -q '^diffkv_crashes_total 1'
printf '%s\n' "$METRICS" | grep 'diffkv_instance_up{inst="1"} 0'
printf '%s\n' "$METRICS" | grep '^diffkv_instance_up 1'

# clean shutdown: SIGINT drains and the process exits 0
kill -INT "$PID"
wait "$PID"
PID=""
trap 'rm -rf "$TMP"' EXIT
echo "chaos smoke OK"
