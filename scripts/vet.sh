#!/usr/bin/env bash
# vet.sh — static-analysis gate for CI, run before the test steps.
#
# Three layers, each of which must pass:
#
#   1. gofmt -l over the tree (excluding testdata fixtures, which are
#      formatted but exercise deliberately odd code) must print nothing.
#   2. go vet ./... must exit 0.
#   3. diffkv-vet ./... (the project's determinism checks: wallclock,
#      globalrand, maprange, goroutine, timeunits, allowaudit) must
#      exit 0 — every finding either fixed or carrying a reasoned
#      //diffkv:allow directive.
#
# Before trusting layer 3, the script proves the gate can actually fail:
# diffkv-vet is run over the injected-violation fixture
# internal/analysis/testdata/ci_violation and MUST exit non-zero there.
# A vet binary that waves the fixture through is broken, and the build
# fails rather than green-lighting silently.
#
# Usage: scripts/vet.sh

set -uo pipefail
cd "$(dirname "$0")/.."

fail=0

echo "vet: gofmt"
unformatted="$(gofmt -l . | grep -v '/testdata/' || true)"
if [[ -n "${unformatted}" ]]; then
    echo "vet: gofmt needed on:" >&2
    echo "${unformatted}" >&2
    fail=1
fi

echo "vet: go vet ./..."
if ! go vet ./...; then
    fail=1
fi

echo "vet: building diffkv-vet"
if ! go build -o /tmp/diffkv-vet ./cmd/diffkv-vet; then
    echo "vet: diffkv-vet does not build" >&2
    exit 1
fi

echo "vet: self-test (injected violations must fail the gate)"
if /tmp/diffkv-vet internal/analysis/testdata/ci_violation >/dev/null 2>&1; then
    echo "vet: SELF-TEST FAILED — diffkv-vet exited 0 on the injected-violation fixture" >&2
    echo "vet: the gate cannot be trusted; failing the build" >&2
    exit 1
fi

echo "vet: diffkv-vet ./..."
if ! /tmp/diffkv-vet ./...; then
    fail=1
fi

if [[ "${fail}" -ne 0 ]]; then
    echo "vet: FAILED" >&2
    exit 1
fi
echo "vet: OK"
