#!/usr/bin/env bash
# Gateway smoke test: boot diffkv-gateway from the checked-in scenario
# spec, stream one completion over SSE, walk the /debug trace pipeline
# (span tree, Perfetto download, offline diffkv-trace analysis), scrape
# /metrics for the serving series, then shut down cleanly via SIGINT
# (graceful drain). Run from the repository root; CI runs this after
# the unit tests.
set -euo pipefail

ADDR="${GATEWAY_ADDR:-127.0.0.1:8178}"
TMP="$(mktemp -d)"
trap 'kill -9 "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/diffkv-gateway" ./cmd/diffkv-gateway
"$TMP/diffkv-gateway" -scenario testdata/scenario_gateway.json -listen "$ADDR" &
PID=$!

for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "http://$ADDR/healthz"; echo

# one streamed completion: tokens must arrive as SSE chunks ending in [DONE]
OUT="$(curl -fsS -N --max-time 60 \
  -d '{"prompt": "gateway smoke", "max_tokens": 16, "stream": true}' \
  "http://$ADDR/v1/completions")"
CHUNKS="$(printf '%s\n' "$OUT" | grep -c '^data: {')"
echo "SSE chunks: $CHUNKS"
# First-token chunk + 16 token chunks + final usage chunk
[ "$CHUNKS" -ge 17 ]
printf '%s\n' "$OUT" | grep -q '^data: \[DONE\]'
printf '%s\n' "$OUT" | grep -q '"finish_reason":"stop"'

# a blocking completion whose id anchors the /debug span-tree lookup
COMP="$(curl -fsS --max-time 60 \
  -d '{"prompt": "trace walkthrough", "max_tokens": 8}' \
  "http://$ADDR/v1/completions")"
ID="$(printf '%s' "$COMP" | grep -o '"id":"cmpl-[0-9]*"' | cut -d'"' -f4)"
echo "request id: $ID"
[ -n "$ID" ]

# the span tree must carry the phase breakdown for that request
SPANS="$(curl -fsS "http://$ADDR/debug/requests/$ID")"
printf '%s\n' "$SPANS" | grep -q '"phases"'
printf '%s\n' "$SPANS" | grep -q '"completed":true'

# /debug/trace downloads a Perfetto-loadable trace-event file
curl -fsS "http://$ADDR/debug/trace" -o "$TMP/trace.json"
grep -q '"traceEvents"' "$TMP/trace.json"

# the offline analyzer rebuilds span trees from the download
go build -o "$TMP/diffkv-trace" ./cmd/diffkv-trace
"$TMP/diffkv-trace" "$TMP/trace.json" | tee "$TMP/trace_report.txt"
grep -q 'completed' "$TMP/trace_report.txt"

# the serving series an operator scrapes
METRICS="$(curl -fsS "http://$ADDR/metrics")"
printf '%s\n' "$METRICS" | grep 'diffkv_ttft_seconds{quantile="0.5"}'
printf '%s\n' "$METRICS" | grep 'diffkv_tpot_seconds{quantile="0.95"}'
printf '%s\n' "$METRICS" | grep 'diffkv_goodput_tokens_per_sec'
printf '%s\n' "$METRICS" | grep -q '^diffkv_requests_completed_total 2'
# trace health and per-instance labeled gauges
printf '%s\n' "$METRICS" | grep '^diffkv_trace_events_retained '
printf '%s\n' "$METRICS" | grep '^diffkv_trace_dropped_total '
printf '%s\n' "$METRICS" | grep 'diffkv_queue_depth{inst="1"}'
printf '%s\n' "$METRICS" | grep 'diffkv_phase_decode_seconds{quantile="0.5"}'
# telemetry exposition: cumulative histograms, saturation and SLO gauges
printf '%s\n' "$METRICS" | grep 'diffkv_ttft_seconds_hist_bucket{le="+Inf"}'
printf '%s\n' "$METRICS" | grep '^diffkv_ttft_seconds_hist_count '
printf '%s\n' "$METRICS" | grep '^diffkv_saturation_headroom '
printf '%s\n' "$METRICS" | grep 'diffkv_saturation_headroom{inst="1"}'
printf '%s\n' "$METRICS" | grep 'diffkv_slo_burn_rate{metric="ttft",window="fast"}'
printf '%s\n' "$METRICS" | grep 'diffkv_slo_firing{metric="goodput"}'
printf '%s\n' "$METRICS" | grep 'diffkv_preemptions_total{inst="1"}'

# the telemetry snapshot the dashboard polls
TEL="$(curl -fsS "http://$ADDR/debug/telemetry")"
printf '%s\n' "$TEL" | grep -q '"cluster"'
printf '%s\n' "$TEL" | grep -q '"headroom"'
printf '%s\n' "$TEL" | grep -q '"slos"'
printf '%s\n' "$TEL" | grep -q '"metric":"ttft"'

# one SSE telemetry frame (curl exits 28 when the stream outlives the
# timeout — expected; we only need the first frame)
FRAME="$(curl -sS -N --max-time 2 "http://$ADDR/debug/telemetry/stream?interval_ms=200" || true)"
printf '%s\n' "$FRAME" | head -1 | grep -q '^data: {'

# pprof rides behind the same debug gate
curl -fsS "http://$ADDR/debug/pprof/cmdline" >/dev/null

# diffkv-top renders a live frame (-once) against the running gateway
go build -o "$TMP/diffkv-top" ./cmd/diffkv-top
"$TMP/diffkv-top" -once -url "http://$ADDR" | tee "$TMP/top.txt"
grep -q 'diffkv-top — live' "$TMP/top.txt"
grep -q 'headroom' "$TMP/top.txt"
grep -q 'slo' "$TMP/top.txt"

# ... and an offline frame from the Perfetto-exported trace
"$TMP/diffkv-top" -trace "$TMP/trace.json" | tee "$TMP/top_offline.txt"
grep -q 'offline replay' "$TMP/top_offline.txt"

# clean shutdown: SIGINT drains and the process exits 0
kill -INT "$PID"
wait "$PID"
trap 'rm -rf "$TMP"' EXIT
echo "gateway smoke OK"
