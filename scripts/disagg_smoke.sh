#!/usr/bin/env bash
# Disaggregation smoke test: run the checked-in prefill/decode scenario
# (2+2 pools, compressed KV shipped over the NIC model) through
# diffkv-cluster twice and require bit-identical output — deterministic
# transfers — then walk the transfer report out of the trace and serve
# a completion through a live disaggregated gateway, verifying the
# shipment counters on /metrics and the disagg section on
# /debug/telemetry. Run from the repository root; CI runs this after
# the unit tests.
set -euo pipefail

ADDR="${DISAGG_GATEWAY_ADDR:-127.0.0.1:8189}"
TMP="$(mktemp -d)"
trap 'kill -9 "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT
PID=""

go build -o "$TMP/diffkv-cluster" ./cmd/diffkv-cluster
go build -o "$TMP/diffkv-trace" ./cmd/diffkv-trace
go build -o "$TMP/diffkv-gateway" ./cmd/diffkv-gateway

# same scenario + seed twice: the shipment timeline, completion set and
# metrics must be bit-identical
"$TMP/diffkv-cluster" -scenario testdata/scenario_disagg.json -trace "$TMP/events.jsonl" \
    | tee "$TMP/run1.txt"
"$TMP/diffkv-cluster" -scenario testdata/scenario_disagg.json -trace "$TMP/events2.jsonl" \
    > "$TMP/run2.txt"
# the trace line names its output file; everything else must match
diff <(grep -v '^  trace:' "$TMP/run1.txt") <(grep -v '^  trace:' "$TMP/run2.txt")
cmp "$TMP/events.jsonl" "$TMP/events2.jsonl"

# the transfer machinery visibly ran and liveness held
grep -q 'disagg: 2 prefill + 2 decode instances' "$TMP/run1.txt"
grep -q 'link 1->' "$TMP/run1.txt"
if grep -q 'WARNING' "$TMP/run1.txt"; then
  echo "disagg smoke: liveness violation reported" >&2
  exit 1
fi

# the offline analyzer reconstructs per-lane transfer traffic and the
# xfer:inst phase
"$TMP/diffkv-trace" "$TMP/events.jsonl" | tee "$TMP/report.txt"
grep -q 'transfer traffic:' "$TMP/report.txt"
grep -q 'prefill>decode' "$TMP/report.txt"
grep -q 'xfer:inst' "$TMP/report.txt"

# live gateway over the same pool split: a completion crosses both
# pools, the shipment counters reach /metrics, and /debug/telemetry
# carries the disagg section
"$TMP/diffkv-gateway" -scenario testdata/scenario_disagg_gateway.json -listen "$ADDR" &
PID=$!
for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done

COMP="$(curl -fsS --max-time 60 \
  -d '{"prompt": "disagg smoke", "max_tokens": 8}' \
  "http://$ADDR/v1/completions")"
printf '%s\n' "$COMP" | grep -q '"finish_reason"'

METRICS="$(curl -fsS "http://$ADDR/metrics")"
printf '%s\n' "$METRICS" | grep -q '^diffkv_kv_transfers_total 1'
printf '%s\n' "$METRICS" | grep 'diffkv_kv_bytes_shipped_total{from='
printf '%s\n' "$METRICS" | grep 'diffkv_pool_instances{pool="prefill"} 2'
printf '%s\n' "$METRICS" | grep 'diffkv_pool_instances{pool="decode"} 2'

TEL="$(curl -fsS "http://$ADDR/debug/telemetry")"
printf '%s\n' "$TEL" | grep -q '"disagg"'
printf '%s\n' "$TEL" | grep -q '"kv_bytes_shipped"'

# clean shutdown: SIGINT drains and the process exits 0
kill -INT "$PID"
wait "$PID"
PID=""
trap 'rm -rf "$TMP"' EXIT
echo "disagg smoke OK"
