package diffkv

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestPublicAPISurface pins the exported identifier list of package
// diffkv against a checked-in golden file, so a PR that silently drops,
// renames or accidentally exports a symbol fails CI with a readable
// diff. Regenerate intentionally with `go test -run PublicAPISurface
// -update`.
func TestPublicAPISurface(t *testing.T) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var decls []string
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && d.Name.IsExported() {
					decls = append(decls, "func "+d.Name.Name)
				}
			case *ast.GenDecl:
				kind := map[token.Token]string{
					token.TYPE: "type", token.VAR: "var", token.CONST: "const",
				}[d.Tok]
				if kind == "" {
					continue
				}
				for _, spec := range d.Specs {
					switch spec := spec.(type) {
					case *ast.TypeSpec:
						if spec.Name.IsExported() {
							decls = append(decls, kind+" "+spec.Name.Name)
						}
					case *ast.ValueSpec:
						for _, id := range spec.Names {
							if id.IsExported() {
								decls = append(decls, kind+" "+id.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(decls)
	got := fmt.Sprintf("// Exported surface of package diffkv (one identifier per line).\n// Regenerate: go test -run PublicAPISurface -update\n%s\n",
		strings.Join(decls, "\n"))

	path := filepath.Join("testdata", "api_surface.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run PublicAPISurface -update` to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("public API surface changed.\nIf intentional, regenerate the golden with -update and call the change out in the PR.\n got:\n%s\nwant:\n%s", got, want)
	}
}
