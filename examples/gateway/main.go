// Gateway: the network-facing serving API end to end, in one process.
// A declarative Scenario builds a cluster stack, StartLoop hands its
// step cadence to the always-on driver, and the OpenAI-style HTTP
// gateway serves it — then this program turns around and acts as its
// own client: it streams a completion over SSE, disconnects a second
// request mid-stream (watching the cancellation free KV state), scrapes
// /metrics, and drains the stack through Loop.Shutdown. Everything here
// is what `cmd/diffkv-gateway -scenario spec.json` does behind one
// binary, laid out as library calls.
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"diffkv"
	"diffkv/internal/httpapi"
)

func main() {
	sc := diffkv.Scenario{
		Name:      "gateway-demo",
		Model:     "Llama3-8B",
		Method:    "DiffKV",
		MemFrac:   0.3,
		MaxGenLen: 256,
		Workload:  diffkv.WorkloadSpec{Bench: "GSM8K"}, // shapes the stack; traffic arrives over HTTP
		Cluster:   &diffkv.ClusterSpec{Instances: 2, Routing: diffkv.RouteLeastLoaded},
		Gateway:   &diffkv.GatewaySpec{TimeScale: 0.02}, // 50x faster than real time
		Seed:      7,
	}
	st, err := sc.Build()
	if err != nil {
		log.Fatal(err)
	}
	loop := st.StartLoop(diffkv.LoopConfig{TimeScale: sc.Gateway.TimeScale})
	api, err := httpapi.New(httpapi.Config{Loop: loop, ModelName: st.Model.Name})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: api.Handler()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("gateway up on %s (%d-instance cluster, %s routing)\n\n",
		base, len(st.Cluster.Engines()), st.Cluster.Policy())

	// 1: a streamed completion — tokens arrive incrementally over SSE
	resp, err := http.Post(base+"/v1/completions", "application/json",
		strings.NewReader(`{"prompt": "prove that swap beats recompute", "max_tokens": 8, "stream": true}`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("streamed completion:")
	sc1 := bufio.NewScanner(resp.Body)
	for sc1.Scan() {
		if line := sc1.Text(); strings.HasPrefix(line, "data: ") {
			fmt.Printf("  %s\n", truncate(line, 120))
			if line == "data: [DONE]" {
				break
			}
		}
	}
	resp.Body.Close()

	// 2: a client that hangs up mid-stream — the session is cancelled
	// and its KV pages freed at the next step boundary
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/completions",
		strings.NewReader(`{"prompt_tokens": 1024, "max_tokens": 128, "stream": true}`))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	sc2 := bufio.NewScanner(resp2.Body)
	for chunks := 0; sc2.Scan() && chunks < 2; {
		if strings.HasPrefix(sc2.Text(), "data: ") {
			chunks++
		}
	}
	cancel()
	resp2.Body.Close()
	for loop.Metrics().Driver.Cancelled == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	m := loop.Metrics()
	fmt.Printf("\nafter mid-stream disconnect: %d cancelled, %d KV pages in use, %d sessions open\n",
		m.Driver.Cancelled, m.Driver.UsedKVPages, m.Driver.OpenSessions)

	// 3: the Prometheus surface an operator scrapes
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nselected /metrics series:")
	sc3 := bufio.NewScanner(mresp.Body)
	for sc3.Scan() {
		line := sc3.Text()
		for _, prefix := range []string{
			"diffkv_ttft_seconds{quantile=\"0.5\"}", "diffkv_requests_completed_total",
			"diffkv_requests_cancelled_total", "diffkv_goodput_tokens_per_sec",
			"diffkv_instances", "diffkv_kv_pages_used",
		} {
			if strings.HasPrefix(line, prefix) {
				fmt.Printf("  %s\n", line)
			}
		}
	}
	mresp.Body.Close()

	// 4: one graceful-drain entry point for the whole stack
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := loop.Shutdown(sctx); err != nil {
		log.Fatal(err)
	}
	if err := srv.Shutdown(sctx); err != nil {
		log.Fatal(err)
	}
	final := loop.Metrics()
	fmt.Printf("\ndrained: %d opened, %d completed, %d cancelled — cluster stuck=%d\n",
		final.Opened, final.Completed, final.Driver.Cancelled, st.Cluster.Metrics().Stuck())
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
