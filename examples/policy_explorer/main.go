// Policy explorer: sweep the compression-policy thresholds (αh, αl) on one
// model and watch the accuracy/memory tradeoff move (Fig. 10 scenario) —
// the workflow an operator would use to calibrate DiffKV for a new model.
package main

import (
	"fmt"
	"log"

	"diffkv"
)

func main() {
	model := diffkv.Llama3_8B
	bench, err := diffkv.BenchmarkByName("MATH-train")
	if err != nil {
		log.Fatal(err)
	}
	promptLen, genLen := bench.EvalLen()

	run := func(p diffkv.PolicyParams) (acc, mem float64) {
		eng, err := diffkv.NewEngine(diffkv.EngineConfig{
			Model: model, Params: p,
			DensityScale: bench.DensityScale, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		seqs := 2
		var errSum, memSum float64
		for s := 0; s < seqs; s++ {
			res, err := eng.RunSequence(promptLen, genLen, uint64(s))
			if err != nil {
				log.Fatal(err)
			}
			errSum += res.OutputErr / float64(seqs)
			memSum += res.MemFrac / float64(seqs)
		}
		return bench.Accuracy(model.Name, errSum), memSum
	}

	fmt.Printf("Calibrating %s on the MATH training split (paper Fig. 10)\n\n", model.Name)

	fmt.Println("sweep αh (K8V4-K4V2, αl=0.02):")
	fmt.Printf("  %-6s %-10s %-8s\n", "αh", "accuracy", "memory")
	for _, ah := range []float64{1, 2, 3, 4, 5} {
		p := diffkv.DefaultParams(model.Name)
		p.AlphaH = ah
		acc, mem := run(p)
		marker := ""
		if ah == 1 {
			marker = "  <- paper's choice"
		}
		fmt.Printf("  %-6.0f %-10.1f %.1f%%%s\n", ah, acc, 100*mem, marker)
	}

	fmt.Println("\nsweep αl (pruning threshold, αh=1):")
	fmt.Printf("  %-6s %-10s %-8s\n", "αl", "accuracy", "memory")
	for _, al := range []float64{0.02, 0.04, 0.06, 0.08, 0.1} {
		p := diffkv.DefaultParams(model.Name)
		p.AlphaL = al
		acc, mem := run(p)
		marker := ""
		if al == 0.02 {
			marker = "  <- paper's choice"
		}
		fmt.Printf("  %-6.2f %-10.1f %.1f%%%s\n", al, acc, 100*mem, marker)
	}

	fmt.Println("\nHigher αh moves tokens to the K4V2 tier (less memory, more error);")
	fmt.Println("higher αl prunes more aggressively. The chosen values maximize")
	fmt.Println("accuracy on the calibration split (paper §7.2).")
}
