// Quickstart: compress one sequence with DiffKV and inspect fidelity,
// memory and the token-tier breakdown.
package main

import (
	"fmt"
	"log"

	"diffkv"
)

func main() {
	eng, err := diffkv.NewEngine(diffkv.EngineConfig{
		Model:  diffkv.Llama3_8B,
		Params: diffkv.DefaultParams("Llama3-8B"), // αh=1, αl=0.02, W=64
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// one request: 512 prompt tokens, 512 generated tokens
	res, err := eng.RunSequence(512, 512, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("DiffKV quickstart — Llama3-8B, 512+512 tokens")
	fmt.Printf("  attention output error vs FP16: %.3f\n", res.OutputErr)
	fmt.Printf("  KV memory vs vLLM FP16:         %.1f%%\n", 100*res.MemFrac)
	fmt.Printf("  compression ratio:              %.1fx\n", 1/res.MemFrac)
	fmt.Printf("  token tiers: %.0f%% high (K8V4), %.0f%% low (K4V2), %.0f%% pruned\n",
		100*res.Breakdown.High, 100*res.Breakdown.Low, 100*res.Breakdown.Pruned)

	// task-accuracy view through a benchmark profile
	acc := diffkv.BenchGSM8K.Accuracy("Llama3-8B", res.OutputErr)
	fmt.Printf("  modeled GSM8K accuracy: %.1f (FP16 reference %.1f)\n",
		acc, diffkv.BenchGSM8K.FP16["Llama3-8B"])
}
