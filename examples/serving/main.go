// Serving: dynamic-workload comparison between vLLM and DiffKV under
// Poisson arrivals (Fig. 16 scenario) — DiffKV's compressed cache admits
// larger batches, so it sustains higher request rates before queueing
// delays blow up.
package main

import (
	"fmt"
	"log"

	"diffkv"
)

func main() {
	model := diffkv.Llama3_8B
	cluster := diffkv.NewCluster(diffkv.L40(), 1)

	fmt.Printf("Dynamic workload: %s on 1x %s, GSM8K-like requests\n\n",
		model.Name, cluster.Device.Name)
	fmt.Printf("%-12s %-18s %-18s\n", "rate(req/s)", "vLLM (s/token)", "DiffKV (s/token)")

	for _, rate := range []float64{0.5, 1, 2, 5} {
		row := fmt.Sprintf("%-12.1f", rate)
		for _, method := range []string{"vLLM", "DiffKV"} {
			traits, err := diffkv.TraitsFor(method, 0.3)
			if err != nil {
				log.Fatal(err)
			}
			cfg := diffkv.ServerConfig{
				Model:   model,
				Cluster: cluster,
				Traits:  traits,
				Seed:    11,
			}
			if method == "DiffKV" {
				cfg.UseManager = true // real paged memory manager
				cfg.HiFrac, cfg.LoFrac = 0.2, 0.25
			}
			srv, err := diffkv.NewServer(cfg)
			if err != nil {
				log.Fatal(err)
			}
			reqs := diffkv.NewRequestGen(diffkv.BenchGSM8K, 1024, uint64(rate*10)).
				Poisson(rate, 120)
			res, err := srv.Run(reqs)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %-18.3f", res.AvgPerTokenLatency)
		}
		fmt.Println(row)
	}
	fmt.Println("\nDiffKV's smaller KV footprint admits more concurrent requests,")
	fmt.Println("deferring the queueing knee to higher request rates (paper Fig. 16).")
}
