// Prefixcache: persist a compressed KV cache and restore it — the
// mechanism behind reusable system-prompt prefixes. A long shared prefix
// is compressed once through the DiffKV policy, snapshotted to a buffer
// (in production: a file or object store), and restored into a fresh
// manager byte-for-byte, skipping recomputation and recompression.
package main

import (
	"bytes"
	"fmt"
	"log"

	"diffkv/internal/kvcache"
	"diffkv/internal/mathx"
	"diffkv/internal/policy"
	"diffkv/internal/synth"
)

func main() {
	model := synth.Llama3_8B
	dim := model.HeadDim
	prefixLen := 512

	newMgr := func() *kvcache.Manager {
		m, err := kvcache.NewManager(kvcache.Config{
			Dim: dim, PageBytes: 8192, NumPages: 256,
			MaxSeqLen: 4096, Materialize: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	// --- serve the shared prefix once ---
	src := newMgr()
	sc, err := src.AddSequence(1, 1)
	if err != nil {
		log.Fatal(err)
	}
	hc := sc.Heads[0]

	rng := mathx.NewRNG(99)
	prof := synth.Profile(model, 8, 0, 1, rng)
	data := synth.GenHead(model, prof, prefixLen, rng.SplitAt(1))
	sig := data.SignificancePrefix(model, prefixLen, rng.SplitAt(2))
	params := policy.ParamsForModel(model.Name)
	levels := policy.ClassifyPrompt(sig, params)
	for i, lvl := range levels {
		switch lvl {
		case policy.LevelHigh:
			err = hc.AppendToken(kvcache.LevelHi, data.Keys[i], data.Vals[i], sig[i], int32(i))
		case policy.LevelLow:
			err = hc.AppendToken(kvcache.LevelLo, data.Keys[i], data.Vals[i], sig[i], int32(i))
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("compressed %d-token prefix: %d high / %d low / %d pruned, %d pages\n",
		prefixLen, hc.HiTokens(), hc.LoTokens(),
		prefixLen-hc.TotalTokens(), src.UsedPages())

	// --- snapshot it ---
	var snap bytes.Buffer
	if err := src.WriteSnapshot(&snap, 1); err != nil {
		log.Fatal(err)
	}
	fp16Bytes := prefixLen * 4 * dim
	fmt.Printf("snapshot: %d bytes (FP16 prefix would be %d — %.1fx smaller)\n",
		snap.Len(), fp16Bytes, float64(fp16Bytes)/float64(snap.Len()))

	// --- restore into a fresh serving process ---
	dst := newMgr()
	if err := dst.ReadSnapshot(bytes.NewReader(snap.Bytes()), 7); err != nil {
		log.Fatal(err)
	}
	restored, _ := dst.Sequence(7)
	fmt.Printf("restored: %d high / %d low tokens across %d pages — ready to serve\n",
		restored.Heads[0].HiTokens(), restored.Heads[0].LoTokens(), dst.UsedPages())
}
