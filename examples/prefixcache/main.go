// Prefixcache: persist a compressed KV cache and restore it — the
// mechanism behind reusable system-prompt prefixes. A long shared prefix
// is compressed once through the DiffKV policy, snapshotted to a buffer
// (in production: a file or object store), and restored into a fresh
// manager byte-for-byte, skipping recomputation and recompression.
//
// The second act shows the host-memory prefix tier at serving time: a
// prefix group evicted from the GPU prefix cache spills to host memory
// instead of vanishing, and a returning request promotes it back over
// PCIe — a host-tier hit that still skips the prompt recompute.
package main

import (
	"bytes"
	"fmt"
	"log"

	"diffkv"

	"diffkv/internal/kvcache"
	"diffkv/internal/mathx"
	"diffkv/internal/policy"
	"diffkv/internal/synth"
	"diffkv/internal/workload"
)

func main() {
	model := synth.Llama3_8B
	dim := model.HeadDim
	prefixLen := 512

	newMgr := func() *kvcache.Manager {
		m, err := kvcache.NewManager(kvcache.Config{
			Dim: dim, PageBytes: 8192, NumPages: 256,
			MaxSeqLen: 4096, Materialize: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	// --- serve the shared prefix once ---
	src := newMgr()
	sc, err := src.AddSequence(1, 1)
	if err != nil {
		log.Fatal(err)
	}
	hc := sc.Heads[0]

	rng := mathx.NewRNG(99)
	prof := synth.Profile(model, 8, 0, 1, rng)
	data := synth.GenHead(model, prof, prefixLen, rng.SplitAt(1))
	sig := data.SignificancePrefix(model, prefixLen, rng.SplitAt(2))
	params := policy.ParamsForModel(model.Name)
	levels := policy.ClassifyPrompt(sig, params)
	for i, lvl := range levels {
		switch lvl {
		case policy.LevelHigh:
			err = hc.AppendToken(kvcache.LevelHi, data.Keys[i], data.Vals[i], sig[i], int32(i))
		case policy.LevelLow:
			err = hc.AppendToken(kvcache.LevelLo, data.Keys[i], data.Vals[i], sig[i], int32(i))
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("compressed %d-token prefix: %d high / %d low / %d pruned, %d pages\n",
		prefixLen, hc.HiTokens(), hc.LoTokens(),
		prefixLen-hc.TotalTokens(), src.UsedPages())

	// --- snapshot it ---
	var snap bytes.Buffer
	if err := src.WriteSnapshot(&snap, 1); err != nil {
		log.Fatal(err)
	}
	fp16Bytes := prefixLen * 4 * dim
	fmt.Printf("snapshot: %d bytes (FP16 prefix would be %d — %.1fx smaller)\n",
		snap.Len(), fp16Bytes, float64(fp16Bytes)/float64(snap.Len()))

	// --- restore into a fresh serving process ---
	dst := newMgr()
	if err := dst.ReadSnapshot(bytes.NewReader(snap.Bytes()), 7); err != nil {
		log.Fatal(err)
	}
	restored, _ := dst.Sequence(7)
	fmt.Printf("restored: %d high / %d low tokens across %d pages — ready to serve\n",
		restored.Heads[0].HiTokens(), restored.Heads[0].LoTokens(), dst.UsedPages())

	// --- act two: host-tier prefix spillover at serving time ---
	fmt.Println("\n--- host-memory prefix tier ---")
	traits, err := diffkv.TraitsFor("DiffKV", 0.3)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := diffkv.NewServer(diffkv.ServerConfig{
		Model: diffkv.Llama3_8B, Cluster: diffkv.NewCluster(diffkv.L40(), 1),
		Traits: traits, UseManager: true, HiFrac: 0.2, LoFrac: 0.25,
		PrefixCacheGroups: 1,       // GPU cache holds a single group
		HostMemoryBytes:   2 << 30, // evicted groups spill here
		Seed:              42,
	})
	if err != nil {
		log.Fatal(err)
	}
	mk := func(id, group int, at float64) workload.Request {
		return workload.Request{
			ID: id, ArrivalUs: at, PromptLen: 1024, GenLen: 32,
			PrefixGroup: group, PrefixLen: prefixLen,
		}
	}
	// group 1 warms the GPU cache, group 2 evicts it (spill to host),
	// then group 1 returns — served from the host tier
	res, err := srv.Run([]diffkv.Request{
		mk(1, 1, 0), mk(2, 2, 30e6), mk(3, 1, 60e6),
	})
	if err != nil {
		log.Fatal(err)
	}
	m := res.Offload
	fmt.Printf("GPU cache of 1 group, 2 groups in play: %d spill(s) to host, %d host hit(s) (%d prefix tokens reused)\n",
		m.PrefixSpills, m.PrefixHits, m.PrefixHitTokens)
	fmt.Println("the returning group skipped its prefix recompute after one PCIe promotion")
}
