// Scenario: the composable v2 API end to end. This walkthrough does four
// things a production integration would do:
//
//  1. registers a third-party compression method (RegisterMethod) with a
//     compression hook, so the serving stack runs it with the real page
//     manager without any change to diffkv internals;
//  2. registers a custom routing policy (RegisterRoutingPolicy) that
//     routes by request-ID hash;
//  3. declares the whole setup — model, method, workload, cluster,
//     routing — as one JSON-serializable diffkv.Scenario and Builds it;
//  4. drives the built cluster like an online server through Session
//     handles: token-progress callbacks stream per-request, and one
//     session is cancelled mid-flight (its KV pages and host-tier state
//     are freed immediately, visible in the cluster metrics).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"

	"diffkv"
)

// turboKV is a hypothetical third-party method: DiffKV-style two-tier
// compression with a more aggressive low tier, measured at a smaller
// resident footprint. ServingTraits drives the cost model; the
// CompressionHook tells scenario building to run the real page manager.
type turboKV struct{}

func (turboKV) Name() string { return "TurboKV" }

func (turboKV) ServingTraits(memFrac float64) diffkv.ServingTraits {
	if memFrac <= 0 {
		memFrac = 0.25
	}
	return diffkv.ServingTraits{
		Name: "TurboKV", ResidentMemFrac: memFrac, AttnBytesFrac: memFrac,
		FrameworkOverhead: 1,
	}
}

func (turboKV) Compression() diffkv.CompressionSetup {
	return diffkv.CompressionSetup{UseManager: true, HiFrac: 0.15, LoFrac: 0.3}
}

// idHash is a custom routing policy: deterministic request-ID hashing
// over whatever instances admission control left routable.
type idHash struct{}

func (idHash) Name() string { return "id-hash" }

func (idHash) Pick(req diffkv.Request, snaps []diffkv.RoutingSnapshot) int {
	return snaps[req.ID%len(snaps)].ID
}

func main() {
	// 1+2: runtime registrations — both names become first-class
	// everywhere a method / routing policy is named
	if err := diffkv.RegisterMethod(turboKV{}); err != nil {
		log.Fatal(err)
	}
	if err := diffkv.RegisterRoutingPolicy("id-hash",
		func(diffkv.ClusterServerConfig) (diffkv.RoutingPolicy, error) {
			return idHash{}, nil
		}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("methods:  %v\nrouting:  %v\n\n", diffkv.Methods(), diffkv.RoutingPolicies())

	// 3: one declarative spec for the whole stack. This struct is what
	// `diffkv-serve -scenario file.json` loads; print it to see the wire
	// format.
	sc := diffkv.Scenario{
		Name:      "turbokv-idhash-cluster",
		Model:     "Llama3-8B",
		Method:    "TurboKV",
		MemFrac:   0.3,
		MaxGenLen: 128,
		Workload:  diffkv.WorkloadSpec{Bench: "GSM8K", Requests: 10},
		Cluster:   &diffkv.ClusterSpec{Instances: 2, Routing: "id-hash"},
		Seed:      7,
	}
	spec, _ := json.MarshalIndent(&sc, "", "  ")
	fmt.Printf("scenario spec:\n%s\n\n", spec)

	st, err := sc.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 4: drive the cluster online through sessions
	ctx := context.Background()
	var sessions []*diffkv.Session
	var victim *diffkv.Session
	for i, r := range st.Requests() {
		s, err := st.Cluster.Open(ctx, r)
		if err != nil {
			log.Fatal(err)
		}
		sessions = append(sessions, s)
		if i == 2 {
			victim = s
			s.OnToken(func(u diffkv.TokenUpdate) {
				if u.Generated == 8 {
					fmt.Printf("  request %d: cancelling after %d tokens (user hung up)\n",
						u.Seq, u.Generated)
					s.Cancel()
				}
			})
		}
	}
	if err := st.Cluster.DrainContext(ctx); err != nil {
		log.Fatal(err)
	}

	for _, s := range sessions {
		cp, err := s.Completion()
		switch {
		case errors.Is(err, diffkv.ErrSessionCancelled):
			fmt.Printf("  request %d: cancelled at %d tokens, KV freed\n", s.ID(), s.Generated())
		case err != nil:
			log.Fatal(err)
		default:
			fmt.Printf("  request %d: %d tokens, TTFT %.0f ms\n",
				s.ID(), cp.Req.GenLen, (cp.FirstTokenUs-cp.Req.ArrivalUs)/1e3)
		}
	}

	m := st.Cluster.Metrics()
	fmt.Printf("\ncluster (%s routing): %d completed, %d cancelled, %d stuck\n",
		m.Policy, m.Completed, m.Cancelled, m.Stuck())
	for i, is := range m.PerInstance {
		fmt.Printf("  instance %d: %d requests, %.0f%% utilized\n",
			i+1, is.Dispatched, 100*is.Utilization)
	}
	if victim != nil {
		if _, err := victim.Completion(); errors.Is(err, diffkv.ErrSessionCancelled) {
			fmt.Println("\ncancellation freed the victim's pages mid-run — no restart, no leak;")
			fmt.Println("the same spec, serialized, reproduces this run via -scenario.")
		}
	}
}
