// Offload: swap-instead-of-recompute preemption on an oversubscribed
// engine. A closed-loop chain-of-thought batch outgrows the (deliberately
// tiny) KV budget mid-generation; the three recovery policies handle the
// resulting preemptions differently:
//
//   - recompute throws the victim's KV away and regenerates everything;
//   - swap moves the victim's compressed pages to host memory over PCIe
//     and resumes it where it stopped;
//   - compress-swap first re-quantizes the victim entirely into the
//     low-precision tier, then swaps the smaller payload.
//
// Because DiffKV's tiers are compressed, each swap crosses PCIe in a
// fraction of the FP16 bytes — compression composes with offload.
package main

import (
	"fmt"
	"log"

	"diffkv"
)

func main() {
	traits, err := diffkv.TraitsFor("DiffKV", 0.3)
	if err != nil {
		log.Fatal(err)
	}

	const (
		batch   = 20
		maxGen  = 2048
		reserve = 0.985 // hold back 98.5% of post-weights memory: ~1.5% KV budget
	)
	fmt.Printf("Llama3-8B on one L40, %d CoT requests (near-%d-token generations), %.1f%% KV budget\n\n",
		batch, maxGen, 100*(1-reserve))
	fmt.Printf("%-14s %14s %16s %9s %7s %9s %10s %7s\n",
		"policy", "goodput(tok/s)", "throughput(tok/s)", "preempts", "swaps", "swap-MB", "PCIe(ms)", "thrash")

	for _, policy := range diffkv.PreemptPolicies() {
		cfg := diffkv.ServerConfig{
			Model:         diffkv.Llama3_8B,
			Cluster:       diffkv.NewCluster(diffkv.L40(), 1),
			Traits:        traits,
			UseManager:    true,
			HiFrac:        0.25,
			LoFrac:        0.3,
			MaxGenLen:     maxGen,
			MemoryReserve: reserve,
			PreemptPolicy: policy,
			Seed:          42,
		}
		if policy != diffkv.PreemptRecompute {
			cfg.HostMemoryBytes = 4 << 30 // 4 GiB host tier
		}
		srv, err := diffkv.NewServer(cfg)
		if err != nil {
			log.Fatal(err)
		}
		// identical request set per policy: same generator seed
		reqs := diffkv.NewRequestGen(diffkv.BenchMATH, maxGen, 7).CoTBatch(batch)
		res, err := srv.Run(reqs)
		if err != nil {
			log.Fatal(err)
		}
		m := res.Offload
		fmt.Printf("%-14s %14.1f %16.1f %9d %7d %9.1f %10.1f %7d\n",
			policy, res.GoodputTokensPerSec, res.Throughput,
			res.Preemptions, m.SwapOuts,
			float64(m.SwapOutBytes)/(1<<20), res.OffloadTransferSeconds*1e3,
			m.ThrashEvents)
	}

	fmt.Println("\nrecompute regenerates every preempted token (throughput > goodput);")
	fmt.Println("swap resumes from host memory, so all generated work counts.")
}
