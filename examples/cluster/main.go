// Cluster serving: four DiffKV instances behind a prefix-affinity router.
// Production traffic concentrates on a few system prompts; routing requests
// that share a prefix to the instance already holding its KV pages cuts
// time-to-first-token versus spreading them round-robin, because the
// affine instance skips recomputing the shared prefix.
package main

import (
	"fmt"
	"log"

	"diffkv"
)

func main() {
	traits, err := diffkv.TraitsFor("DiffKV", 0.3)
	if err != nil {
		log.Fatal(err)
	}

	// prefix-heavy workload: 16 system prompts of 768 tokens, 90% of
	// requests reuse one of them
	pc := diffkv.PrefixConfig{Groups: 16, PrefixLen: 768, SharedFrac: 0.9}

	fmt.Println("4x L40 Llama3-8B cluster, MMLU-like prompts, 10 req/s Poisson")
	fmt.Printf("%-16s %12s %12s %12s %10s\n",
		"policy", "ttft-p50(s)", "ttft-p95(s)", "goodput", "hit-frac")

	for _, policy := range diffkv.RoutingPolicies() {
		cfg := diffkv.ClusterServerConfig{
			Instances:     4,
			Policy:        policy,
			MaxQueueDepth: 128,
			Seed:          17,
		}
		cfg.Engine.Model = diffkv.Llama3_8B
		cfg.Engine.Cluster = diffkv.NewCluster(diffkv.L40(), 1)
		cfg.Engine.Traits = traits
		cfg.Engine.UseManager = true // real paged memory manager per instance
		cfg.Engine.HiFrac, cfg.Engine.LoFrac = 0.2, 0.25
		cfg.Engine.MaxGenLen = 256
		cfg.Engine.PrefixCacheGroups = 8

		cs, err := diffkv.NewClusterServer(cfg)
		if err != nil {
			log.Fatal(err)
		}
		reqs := diffkv.NewRequestGen(diffkv.BenchMMLU, 256, 17).PoissonShared(10, 30, pc)
		m, err := cs.Run(reqs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %12.3f %12.3f %12.2f %9.1f%%\n",
			m.Policy, m.TTFT.P50, m.TTFT.P95, m.GoodputReqPerSec, 100*m.PrefixCacheHitFrac)
	}

	fmt.Println("\nPrefix-affinity keeps each shared prefix hot on one instance;")
	fmt.Println("round-robin makes every instance re-warm every prefix (llm-d-style")
	fmt.Println("cache-aware routing versus cache-oblivious spraying).")
}
