// Reasoning: the paper's hardest case — a thinking model (QwQ-32B)
// generating a long chain of thought on a competition-math workload
// (Table 3 scenario). Compares DiffKV against uniform-quantization and
// pruning strategies under CoT error accumulation.
package main

import (
	"fmt"
	"log"

	"diffkv"
)

func main() {
	model := diffkv.QwQ_32B
	bench := diffkv.BenchAIME24

	fmt.Printf("Thinking-model workload: %s on %s (nominal generation %d tokens)\n",
		model.Name, bench.Name, bench.GenLen)
	fmt.Printf("CoT error amplification factor: %.2fx\n\n", bench.CoTFactor())

	// DiffKV with the calibrated QwQ parameters (αh=3, αl=0)
	eng, err := diffkv.NewEngine(diffkv.EngineConfig{
		Model:        model,
		Params:       diffkv.DefaultParams(model.Name),
		DensityScale: bench.DensityScale,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}
	promptLen, genLen := bench.EvalLen()
	var errSum, memSum float64
	seqs := 3
	for s := 0; s < seqs; s++ {
		res, err := eng.RunSequence(promptLen, genLen, uint64(s))
		if err != nil {
			log.Fatal(err)
		}
		errSum += res.OutputErr / float64(seqs)
		memSum += res.MemFrac / float64(seqs)
	}

	fp16 := bench.FP16[model.Name]
	fmt.Printf("%-28s %-10s %-8s\n", "method", "accuracy", "memory")
	fmt.Printf("%-28s %-10.1f %-8s\n", "FP16 (reference)", fp16, "100%")
	fmt.Printf("%-28s %-10.1f %.0f%%\n", "DiffKV (K8V4-K4V2, dynamic)",
		bench.Accuracy(model.Name, errSum), 100*memSum)

	// what uniform schemes would do under the same accumulation
	for _, cfg := range []struct {
		name string
		err  float64
	}{
		{"uniform INT4 (illustrative)", errSum * 2.0},
		{"uniform 2-bit (illustrative)", errSum * 6.0},
		{"50% pruning (illustrative)", errSum * 4.0},
	} {
		fmt.Printf("%-28s %-10.1f\n", cfg.name, bench.Accuracy(model.Name, cfg.err))
	}
	fmt.Println("\nLong chains of thought compound compression error autoregressively;")
	fmt.Println("only near-lossless schemes survive (paper Table 3). Run")
	fmt.Println("`diffkv-bench -exp tab3` for the full measured comparison.")
}
