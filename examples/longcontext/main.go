// Longcontext: the LongBench scenario (Table 2) — a long document prompt
// with a short generated answer. Compression error matters less here than
// in long chains of thought (most text is ground truth in the prompt), but
// memory savings matter more: the prompt dominates the KV cache.
package main

import (
	"fmt"
	"log"

	"diffkv"
)

func main() {
	model := diffkv.Llama31_8B

	fmt.Println("Long-context workloads (LongBench, Table 2) — Llama3.1-8B")
	fmt.Printf("%-12s %-10s %-10s %-14s\n", "benchmark", "FP16-acc", "DiffKV-acc", "DiffKV-memory")

	for _, name := range []string{"Qasper", "HotpotQA", "GovReport", "TREC"} {
		bench, err := diffkv.BenchmarkByName(name)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := diffkv.NewEngine(diffkv.EngineConfig{
			Model:        model,
			Params:       diffkv.DefaultParams(model.Name),
			DensityScale: bench.DensityScale,
			Seed:         21,
		})
		if err != nil {
			log.Fatal(err)
		}
		promptLen, genLen := bench.EvalLen()
		var errSum, memSum float64
		seqs := 2
		for s := 0; s < seqs; s++ {
			res, err := eng.RunSequence(promptLen, genLen, uint64(s))
			if err != nil {
				log.Fatal(err)
			}
			errSum += res.OutputErr / float64(seqs)
			memSum += res.MemFrac / float64(seqs)
		}
		fmt.Printf("%-12s %-10.1f %-10.1f %.1f%%\n",
			bench.Name, bench.FP16[model.Name],
			bench.Accuracy(model.Name, errSum), 100*memSum)
	}

	fmt.Println("\nLong diffuse prompts prune hard: DiffKV reaches 10-19% of the FP16")
	fmt.Println("cache — its deepest compression regime — while answers stay intact")
	fmt.Println("because the generated span is short (paper §7.2).")
}
