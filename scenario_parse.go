package diffkv

// Strict scenario parsing with field-path diagnostics: a spec typo like
// {"workload": {"prefix": {"grops": 4}}} must fail with the offending
// dotted JSON path ("workload.prefix.grops"), not just the bare key —
// specs nest three levels deep and the bare name of a misspelled field
// rarely says where it sits. The checker walks the raw JSON value in
// parallel with the Scenario struct's json tags; the standard decoder
// then performs the actual decode (its UnmarshalTypeError already
// carries a dotted path for type mismatches).

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// ParseScenario parses a scenario from JSON bytes. Parsing is strict:
// unknown fields and type mismatches are errors reporting the dotted
// path of the offending field.
func ParseScenario(data []byte) (*Scenario, error) {
	if err := checkUnknownFields(data, reflect.TypeOf(Scenario{})); err != nil {
		return nil, fmt.Errorf("diffkv: scenario: %w", err)
	}
	var s Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields() // backstop; the path checker runs first
	if err := dec.Decode(&s); err != nil {
		var te *json.UnmarshalTypeError
		if errors.As(err, &te) && te.Field != "" {
			return nil, fmt.Errorf("diffkv: scenario: field %q: cannot parse %s as %s",
				te.Field, te.Value, te.Type)
		}
		return nil, fmt.Errorf("diffkv: scenario: %w", err)
	}
	return &s, nil
}

// checkUnknownFields reports the dotted path of the first JSON object
// key (in sorted order, for determinism) that no struct field accepts.
func checkUnknownFields(data []byte, t reflect.Type) error {
	var raw any
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	return walkUnknown(raw, t, "")
}

func walkUnknown(v any, t reflect.Type, path string) error {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	switch t.Kind() {
	case reflect.Struct:
		obj, ok := v.(map[string]any)
		if !ok {
			return nil // type mismatch: left to the real decoder
		}
		fields := jsonFieldsOf(t)
		keys := make([]string, 0, len(obj))
		for k := range obj {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			ft, known := fields[key]
			if !known {
				// mirror encoding/json: exact match first, then
				// case-insensitive — a case-variant key is not unknown.
				// Scan candidates in sorted order so the winner does not
				// depend on map iteration when several names fold equal.
				names := make([]string, 0, len(fields))
				for name := range fields {
					names = append(names, name)
				}
				sort.Strings(names)
				for _, name := range names {
					if strings.EqualFold(name, key) {
						ft, known = fields[name], true
						break
					}
				}
			}
			full := key
			if path != "" {
				full = path + "." + key
			}
			if !known {
				return fmt.Errorf("unknown field %q", full)
			}
			if err := walkUnknown(obj[key], ft, full); err != nil {
				return err
			}
		}
	case reflect.Slice, reflect.Array:
		arr, ok := v.([]any)
		if !ok {
			return nil
		}
		for i, el := range arr {
			if err := walkUnknown(el, t.Elem(), fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
	case reflect.Map:
		obj, ok := v.(map[string]any)
		if !ok {
			return nil
		}
		keys := make([]string, 0, len(obj))
		for k := range obj {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			full := key
			if path != "" {
				full = path + "." + key
			}
			if err := walkUnknown(obj[key], t.Elem(), full); err != nil {
				return err
			}
		}
	}
	return nil
}

// jsonFieldsOf maps a struct's accepted JSON keys to their field types
// (tag name, or the Go field name when untagged; "-" fields excluded).
func jsonFieldsOf(t reflect.Type) map[string]reflect.Type {
	out := make(map[string]reflect.Type, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		name, _, _ := strings.Cut(f.Tag.Get("json"), ",")
		if name == "-" {
			continue
		}
		if name == "" {
			name = f.Name
		}
		out[name] = f.Type
	}
	return out
}
