package diffkv

// One benchmark per paper table/figure (regenerating its rows/series in
// fast mode), plus micro-benchmarks of the hot kernels. Run with:
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks print nothing; use cmd/diffkv-bench to see the
// tables.

import (
	"testing"

	"diffkv/internal/benchkernels"
	"diffkv/internal/experiments"
	"diffkv/internal/kvcache"
	"diffkv/internal/mathx"
	"diffkv/internal/synth"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, experiments.Opts{Fast: true, Reps: 1, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper artifact ---

func BenchmarkFig2ScoreValueNormCDF(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkFig3PerTokenScores(b *testing.B)          { benchExperiment(b, "fig3") }
func BenchmarkFig4CriticalTokensPerLayer(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFig5CriticalTokensPerHead(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig8DifferentiatedQuant(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFig9DynamicVsStatic(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkFig10Calibration(b *testing.B)            { benchExperiment(b, "fig10") }
func BenchmarkFig11MemoryAccuracyTradeoff(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12CompressionBreakdown(b *testing.B)   { benchExperiment(b, "fig12") }
func BenchmarkFig13CompactionLatency(b *testing.B)      { benchExperiment(b, "fig13") }
func BenchmarkFig14LatencyBreakdown(b *testing.B)       { benchExperiment(b, "fig14") }
func BenchmarkFig15KernelSpeedup(b *testing.B)          { benchExperiment(b, "fig15") }
func BenchmarkFig16DynamicWorkloads(b *testing.B)       { benchExperiment(b, "fig16") }
func BenchmarkFig17Throughput(b *testing.B)             { benchExperiment(b, "fig17") }
func BenchmarkTable1AccuracyMemory(b *testing.B)        { benchExperiment(b, "tab1") }
func BenchmarkTable2LongBench(b *testing.B)             { benchExperiment(b, "tab2") }
func BenchmarkTable3ThinkingModels(b *testing.B)        { benchExperiment(b, "tab3") }

// --- beyond the paper: cluster serving ---

func BenchmarkClusterRouting(b *testing.B) { benchExperiment(b, "cluster-routing") }

// --- kernel micro-benchmarks ---
//
// Bodies live in internal/benchkernels, shared with the diffkv-bench -json
// perf snapshot so both measure identical workloads.

func BenchmarkQuantizeK8(b *testing.B)          { benchkernels.QuantizeK8(b) }
func BenchmarkQuantizeV2(b *testing.B)          { benchkernels.QuantizeV2(b) }
func BenchmarkDequantDotK4(b *testing.B)        { benchkernels.DequantDotK4(b) }
func BenchmarkDequantAxpyV2(b *testing.B)       { benchkernels.DequantAxpyV2(b) }
func BenchmarkDequantDotSlotsPage(b *testing.B) { benchkernels.DequantDotSlotsPage(b) }

func BenchmarkParallelExclusiveScan64K(b *testing.B) {
	src := make([]int32, 65536)
	dst := make([]int32, 65536)
	for i := range src {
		src[i] = int32(i % 5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mathx.ParallelExclusiveScan(src, dst)
	}
}

func BenchmarkFreeListAllocBatch(b *testing.B) {
	// the coordination phase of parallel compaction: 2048 heads allocating
	counts := make([]int32, 2048)
	for i := range counts {
		counts[i] = int32(i % 3)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fl := kvcache.NewFreeList(8192)
		b.StartTimer()
		if _, err := fl.AllocBatch(counts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressedAttention1K(b *testing.B) { benchkernels.CompressedAttention1K(b) }

func BenchmarkCompressedAttention1KScratch(b *testing.B) {
	benchkernels.CompressedAttention1KScratch(b)
}

func BenchmarkGenPolicyStep(b *testing.B) { benchkernels.GenPolicyStep(b) }

func BenchmarkSynthGenHead512(b *testing.B) {
	rng := mathx.NewRNG(9)
	prof := synth.Profile(synth.Llama3_8B, 8, 0, 1, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		synth.GenHead(synth.Llama3_8B, prof, 512, rng)
	}
}

func BenchmarkEngineSequence(b *testing.B) {
	eng, err := NewEngine(EngineConfig{
		Model:  Llama3_8B,
		Params: DefaultParams("Llama3-8B"),
		Seed:   1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RunSequence(128, 96, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
