package diffkv

// One benchmark per paper table/figure (regenerating its rows/series in
// fast mode), plus micro-benchmarks of the hot kernels. Run with:
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks print nothing; use cmd/diffkv-bench to see the
// tables.

import (
	"testing"

	"diffkv/internal/attention"
	"diffkv/internal/experiments"
	"diffkv/internal/kvcache"
	"diffkv/internal/mathx"
	"diffkv/internal/policy"
	"diffkv/internal/quant"
	"diffkv/internal/synth"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, experiments.Opts{Fast: true, Reps: 1, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper artifact ---

func BenchmarkFig2ScoreValueNormCDF(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkFig3PerTokenScores(b *testing.B)          { benchExperiment(b, "fig3") }
func BenchmarkFig4CriticalTokensPerLayer(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFig5CriticalTokensPerHead(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig8DifferentiatedQuant(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFig9DynamicVsStatic(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkFig10Calibration(b *testing.B)            { benchExperiment(b, "fig10") }
func BenchmarkFig11MemoryAccuracyTradeoff(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12CompressionBreakdown(b *testing.B)   { benchExperiment(b, "fig12") }
func BenchmarkFig13CompactionLatency(b *testing.B)      { benchExperiment(b, "fig13") }
func BenchmarkFig14LatencyBreakdown(b *testing.B)       { benchExperiment(b, "fig14") }
func BenchmarkFig15KernelSpeedup(b *testing.B)          { benchExperiment(b, "fig15") }
func BenchmarkFig16DynamicWorkloads(b *testing.B)       { benchExperiment(b, "fig16") }
func BenchmarkFig17Throughput(b *testing.B)             { benchExperiment(b, "fig17") }
func BenchmarkTable1AccuracyMemory(b *testing.B)        { benchExperiment(b, "tab1") }
func BenchmarkTable2LongBench(b *testing.B)             { benchExperiment(b, "tab2") }
func BenchmarkTable3ThinkingModels(b *testing.B)        { benchExperiment(b, "tab3") }

// --- beyond the paper: cluster serving ---

func BenchmarkClusterRouting(b *testing.B) { benchExperiment(b, "cluster-routing") }

// --- kernel micro-benchmarks ---

func BenchmarkQuantizeK8(b *testing.B) {
	rng := mathx.NewRNG(1)
	src := make([]float32, 128)
	rng.NormVec(src, 1)
	dst := make([]byte, quant.PackedLen(128, 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quant.QuantizeInto(src, 8, dst)
	}
}

func BenchmarkQuantizeV2(b *testing.B) {
	rng := mathx.NewRNG(2)
	src := make([]float32, 128)
	rng.NormVec(src, 1)
	dst := make([]byte, quant.PackedLen(128, 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quant.QuantizeInto(src, 2, dst)
	}
}

func BenchmarkDequantDotK4(b *testing.B) {
	rng := mathx.NewRNG(3)
	k := make([]float32, 128)
	q := make([]float32, 128)
	rng.NormVec(k, 1)
	rng.NormVec(q, 1)
	data := make([]byte, quant.PackedLen(128, 4))
	scale, zero := quant.QuantizeInto(k, 4, data)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quant.DequantDot(q, data, 4, scale, zero)
	}
}

func BenchmarkParallelExclusiveScan64K(b *testing.B) {
	src := make([]int32, 65536)
	dst := make([]int32, 65536)
	for i := range src {
		src[i] = int32(i % 5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mathx.ParallelExclusiveScan(src, dst)
	}
}

func BenchmarkFreeListAllocBatch(b *testing.B) {
	// the coordination phase of parallel compaction: 2048 heads allocating
	counts := make([]int32, 2048)
	for i := range counts {
		counts[i] = int32(i % 3)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fl := kvcache.NewFreeList(8192)
		b.StartTimer()
		if _, err := fl.AllocBatch(counts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressedAttention1K(b *testing.B) {
	rng := mathx.NewRNG(5)
	mgr, err := kvcache.NewManager(kvcache.Config{
		Dim: 128, PageBytes: 8192, NumPages: 256, MaxSeqLen: 2048, Materialize: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	sc, _ := mgr.AddSequence(1, 1)
	hc := sc.Heads[0]
	k := make([]float32, 128)
	v := make([]float32, 128)
	for j := 0; j < 1024; j++ {
		rng.NormVec(k, 1)
		rng.NormVec(v, 1)
		lvl := kvcache.LevelHi
		if j%3 != 0 {
			lvl = kvcache.LevelLo
		}
		if err := hc.AppendToken(lvl, k, v, 1, int32(j)); err != nil {
			b.Fatal(err)
		}
	}
	q := make([]float32, 128)
	rng.NormVec(q, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attention.Compressed(q, hc, nil)
	}
}

func BenchmarkGenPolicyStep(b *testing.B) {
	rng := mathx.NewRNG(7)
	mgr, err := kvcache.NewManager(kvcache.Config{
		Dim: 128, PageBytes: 8192, NumPages: 4096, MaxSeqLen: 1 << 20, Materialize: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	sc, _ := mgr.AddSequence(1, 1)
	hc := sc.Heads[0]
	gp, err := policy.NewGenPolicy(policy.ParamsLlama3, 128, 4096)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := make([]float32, 128)
		v := make([]float32, 128)
		rng.NormVec(k, 1)
		rng.NormVec(v, 1)
		gp.Sig.Seed(i, float32(rng.Float64()*2))
		if _, err := gp.Step(hc, k, v, int32(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSynthGenHead512(b *testing.B) {
	rng := mathx.NewRNG(9)
	prof := synth.Profile(synth.Llama3_8B, 8, 0, 1, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		synth.GenHead(synth.Llama3_8B, prof, 512, rng)
	}
}

func BenchmarkEngineSequence(b *testing.B) {
	eng, err := NewEngine(EngineConfig{
		Model:  Llama3_8B,
		Params: DefaultParams("Llama3-8B"),
		Seed:   1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RunSequence(128, 96, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
