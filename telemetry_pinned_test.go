package diffkv

import (
	"reflect"
	"strings"
	"testing"
)

// alertTimeline extracts the KindAlert events from a collector in
// emission order as (time, inst, note) triples.
func alertTimeline(col *TraceCollector) []TraceEvent {
	var out []TraceEvent
	for _, e := range col.Events() {
		if e.Kind == TraceKindAlert {
			out = append(out, e)
		}
	}
	return out
}

// overloadScenario drives a 2-instance cluster well past capacity: a
// 0.98 memory reserve leaves a small KV pool that fills within
// seconds, while the 128-deep admission queue absorbs the backlog for a
// while before shedding — so saturation (a memory signal) leads
// rejection (a queue signal) by design.
func overloadScenario() Scenario {
	return Scenario{
		Model: "Llama3-8B", Method: "DiffKV", MemFrac: 0.3,
		MaxGenLen: 512, MemoryReserve: 0.98,
		Workload: WorkloadSpec{Bench: "MATH", RatePerSec: 30, Seconds: 20},
		Cluster:  &ClusterSpec{Instances: 2, Routing: "least-loaded", MaxQueueDepth: 128},
		Observability: &ObservabilitySpec{
			SampleIntervalMs: 250,
			Saturation:       &SaturationConfig{UpHold: 2, CooldownUs: 5e6},
		},
		Seed: 23,
	}
}

// TestOverloadScaleUpBeforeGoodputDegrades pins the saturation
// analyzer's early-warning property: on an overload ramp the first
// scale_up advisory fires before the cluster starts shedding requests
// (the first reject is when goodput visibly degrades). An advisory
// that only fires after rejects is an autoscaling signal that arrives
// too late to act on.
func TestOverloadScaleUpBeforeGoodputDegrades(t *testing.T) {
	sc := overloadScenario()
	col := NewTraceCollector(1 << 18)
	sc.Tracer = col
	st, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if st.Telemetry == nil {
		t.Fatal("observability section did not create a telemetry center")
	}
	m, err := st.Cluster.Run(st.Requests())
	if err != nil {
		t.Fatal(err)
	}
	if m.Rejected == 0 {
		t.Fatalf("overload scenario never rejected (completed %d) — not an overload", m.Completed)
	}

	firstScaleUp := -1.0
	for _, e := range alertTimeline(col) {
		if strings.HasPrefix(e.Note, "scale_up") {
			firstScaleUp = e.TimeUs
			break
		}
	}
	if firstScaleUp < 0 {
		t.Fatal("overload ramp emitted no scale_up advisory")
	}
	firstReject := -1.0
	for _, e := range col.Events() {
		if e.Kind == TraceKindReject {
			firstReject = e.TimeUs
			break
		}
	}
	if firstReject < 0 {
		t.Fatal("no reject event despite Rejected > 0")
	}
	if firstScaleUp >= firstReject {
		t.Fatalf("scale_up at %.0fus fired after the first reject at %.0fus — advisory arrived too late",
			firstScaleUp, firstReject)
	}

	// the snapshot agrees with the trace: alerts recorded, headroom gone
	snap := st.Telemetry.Snapshot()
	if snap.Cluster.Rejected != int64(m.Rejected) {
		t.Fatalf("snapshot rejected %d != metrics %d", snap.Cluster.Rejected, m.Rejected)
	}
	if len(snap.Alerts) == 0 {
		t.Fatal("telemetry center retained no alerts")
	}
}

// TestOverloadAlertTimelineDeterministic: the same seeded scenario
// produces a bit-identical alert timeline — times, instances, and
// rendered notes — across independent builds. Telemetry sampling rides
// the simulated clock, so observation can never perturb or race the
// thing it observes.
func TestOverloadAlertTimelineDeterministic(t *testing.T) {
	run := func() []TraceEvent {
		sc := overloadScenario()
		col := NewTraceCollector(1 << 18)
		sc.Tracer = col
		st, err := sc.Build()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Cluster.Run(st.Requests()); err != nil {
			t.Fatal(err)
		}
		return alertTimeline(col)
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no alerts to compare")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("alert timelines diverged across identical runs:\n run1: %v\n run2: %v", a, b)
	}
}

// TestChaosSLOBurnBeforeBrownout pins the burn-rate alert as a leading
// indicator under fault injection: when crashes concentrate load on
// survivors, the TTFT SLO starts burning before queue pressure forces
// the engines into brownout admission (all-low tier). An operator
// watching burn rates gets the page while quality is still intact.
func TestChaosSLOBurnBeforeBrownout(t *testing.T) {
	sc := Scenario{
		Model: "Llama3-8B", Method: "DiffKV", MemFrac: 0.3,
		MaxGenLen: 1024, MemoryReserve: 0.98,
		Preemption: "swap", HostMemoryGB: 2,
		BrownoutQueueDepth: 24,
		Workload:           WorkloadSpec{Bench: "MATH", RatePerSec: 10, Seconds: 15},
		Cluster:            &ClusterSpec{Instances: 3, Routing: "least-loaded", MaxQueueDepth: 128},
		Faults: &FaultsSpec{
			Crashes: []CrashSpec{
				{Instance: 1, AtSec: 2, DownSec: 6},
				{Instance: 2, AtSec: 3, DownSec: 5},
			},
		},
		Observability: &ObservabilitySpec{
			SampleIntervalMs: 100,
			SLOs: []SLOSpec{{Metric: "ttft", TargetSec: 0.5,
				FastWindowS: 2, SlowWindowS: 4, BurnThreshold: 2}},
		},
		Seed: 17,
	}
	col := NewTraceCollector(1 << 18)
	sc.Tracer = col
	st, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Cluster.Run(st.Requests()); err != nil {
		t.Fatal(err)
	}

	firstBurn := -1.0
	for _, e := range alertTimeline(col) {
		if strings.HasPrefix(e.Note, "slo_burn ttft") {
			firstBurn = e.TimeUs
			break
		}
	}
	if firstBurn < 0 {
		t.Fatal("chaos run never fired the TTFT burn-rate alert")
	}
	firstBrownout := -1.0
	for _, e := range col.Events() {
		if e.Kind == TraceKindAdmit && e.Note == "brownout" {
			firstBrownout = e.TimeUs
			break
		}
	}
	if firstBrownout < 0 {
		t.Fatal("chaos run never reached brownout admission — queue pressure too low to pin ordering")
	}
	if firstBurn >= firstBrownout {
		t.Fatalf("slo_burn at %.0fus fired after brownout onset at %.0fus — not a leading indicator",
			firstBurn, firstBrownout)
	}
}
