// Command diffkv-trace analyzes a diffkv trace offline: it reads an
// event stream (JSONL from TraceCollector.WriteJSONL, or a Perfetto
// export from /debug/trace — both round-trip), rebuilds every request's
// lifecycle span tree, and reports where the latency went — per-phase
// P50/P95/P99 across requests, the queueing onset (when admission wait
// starts climbing), and preemption-storm windows (bursts of
// preempt/swap_out events). It is the post-mortem counterpart of the
// gateway's live /debug endpoints: same span builder, same numbers.
//
// Usage:
//
//	diffkv-trace trace.jsonl
//	diffkv-trace -json trace.jsonl
//	diffkv-trace -req 17 trace.jsonl          # one request's span tree
//	diffkv-trace -perfetto out.json trace.jsonl   # convert for ui.perfetto.dev
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"diffkv/internal/stats"
	"diffkv/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("diffkv-trace: ")
	var (
		jsonOut      = flag.Bool("json", false, "emit the full report as JSON instead of text")
		reqID        = flag.Int("req", 0, "print one request's span tree (by sequence ID) and exit")
		perfettoPath = flag.String("perfetto", "", "convert the trace to a Perfetto trace-event file and exit")
		stormWindow  = flag.Float64("storm-window", 100, "preemption-storm detection window in simulated ms")
		stormMin     = flag.Int("storm-min", 4, "minimum preemptions within the window to flag a storm")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: diffkv-trace [flags] <trace.jsonl | perfetto.json>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	events, err := trace.ReadEvents(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if len(events) == 0 {
		log.Fatal("no events in trace")
	}

	if *perfettoPath != "" {
		out, err := os.Create(*perfettoPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WritePerfettoEvents(out, events); err != nil {
			out.Close()
			log.Fatal(err)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d events to %s — open in ui.perfetto.dev\n", len(events), *perfettoPath)
		return
	}

	trees := trace.BuildRequestSpans(events)
	if *reqID != 0 {
		rt := trace.FindRequestSpans(trees, *reqID)
		if rt == nil {
			log.Fatalf("no request %d in trace", *reqID)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rt)
		return
	}

	rep := analyze(events, trees, *stormWindow*1e3, *stormMin)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
		return
	}
	rep.print()
}

// phaseDist summarizes one phase's per-request latency distribution in
// milliseconds, over the requests that spent time in it.
type phaseDist struct {
	Phase   string  `json:"phase"`
	Count   int     `json:"count"`
	P50Ms   float64 `json:"p50_ms"`
	P95Ms   float64 `json:"p95_ms"`
	P99Ms   float64 `json:"p99_ms"`
	MeanMs  float64 `json:"mean_ms"`
	TotalMs float64 `json:"total_ms"`
}

// storm is one preemption-storm window: a burst of preempt/swap_out
// events dense enough to flag scheduler thrashing.
type storm struct {
	StartMs     float64 `json:"start_ms"`
	EndMs       float64 `json:"end_ms"`
	Preemptions int     `json:"preemptions"`
	Requests    int     `json:"requests"`
}

// downWindow is one reconstructed instance outage or degradation
// window from health events; EndMs is -1 when the instance never came
// back within the trace.
type downWindow struct {
	Inst    int     `json:"inst"`
	State   string  `json:"state"`
	StartMs float64 `json:"start_ms"`
	EndMs   float64 `json:"end_ms"`
}

// failReason tallies one terminal-failure reason.
type failReason struct {
	Reason string `json:"reason"`
	Count  int    `json:"count"`
}

// xferLink aggregates one prefill→decode shipping lane's KV traffic
// from kv_ship events.
type xferLink struct {
	From      int     `json:"from"`
	To        int     `json:"to"`
	Link      string  `json:"link"`
	Transfers int     `json:"transfers"`
	Bytes     int64   `json:"bytes"`
	WireMs    float64 `json:"wire_ms"`
}

// alertEntry is one telemetry alert (saturation advisory or SLO
// burn-rate transition) in trace order.
type alertEntry struct {
	TimeMs float64 `json:"time_ms"`
	Inst   int     `json:"inst,omitempty"`
	Note   string  `json:"note"`
}

// report is the full analysis output.
type report struct {
	Events    int `json:"events"`
	Requests  int `json:"requests"`
	Completed int `json:"completed"`
	Cancelled int `json:"cancelled"`
	// Failed counts requests terminally failed by fault injection
	// (crash re-dispatch budget exhausted).
	Failed   int `json:"failed,omitempty"`
	InFlight int `json:"in_flight"`
	// Phases has one distribution per lifecycle phase plus e2e.
	Phases []phaseDist `json:"phases"`
	// QueueingOnsetMs is the arrival time (ms) of the first request whose
	// queueing delay exceeded twice the median across the trace — the
	// point where the engine stopped keeping up with arrivals (-1 when
	// queueing never climbed).
	QueueingOnsetMs float64 `json:"queueing_onset_ms"`
	// Storms lists preemption-storm windows, densest first.
	Storms []storm `json:"storms,omitempty"`
	// SwapOutBytes / SwapInBytes total the PCIe traffic of swap events.
	SwapOutBytes int64 `json:"swap_out_bytes,omitempty"`
	SwapInBytes  int64 `json:"swap_in_bytes,omitempty"`
	// Disaggregation transfer traffic (empty without kv_ship events):
	// totals plus per-lane aggregates sorted by source then destination.
	Transfers      int        `json:"transfers,omitempty"`
	KVBytesShipped int64      `json:"kv_bytes_shipped,omitempty"`
	XferLinks      []xferLink `json:"xfer_links,omitempty"`
	// Fault-injection section (empty without health/retry/fail events).
	// Downtime lists per-instance down and degraded windows in time
	// order; CrashOrphans counts requests orphaned by crashes,
	// Redispatches their re-dispatches to survivors, SwapRecovered the
	// sequences the host tier carried through a crash, and FailReasons
	// the terminal failures by reason.
	Downtime      []downWindow `json:"downtime,omitempty"`
	CrashOrphans  int          `json:"crash_orphans,omitempty"`
	Redispatches  int          `json:"redispatches,omitempty"`
	SwapRecovered int          `json:"swap_recovered,omitempty"`
	FailReasons   []failReason `json:"fail_reasons,omitempty"`
	// Alerts is the telemetry alert timeline (scale advisories and SLO
	// burn-rate transitions) in emission order.
	Alerts []alertEntry `json:"alerts,omitempty"`
}

// analyzeFaults reconstructs the fault-injection section: health
// windows per instance, and the retry/recovery/failure event tallies.
func analyzeFaults(rep *report, events []trace.Event) {
	open := map[int]int{} // inst -> index of its unfinished window
	reasons := map[string]int{}
	for _, e := range events {
		switch e.Kind {
		case trace.KindHealth:
			if idx, ok := open[e.Inst]; ok && rep.Downtime[idx].State != e.Note {
				rep.Downtime[idx].EndMs = e.TimeUs / 1e3
				delete(open, e.Inst)
			}
			if _, ok := open[e.Inst]; !ok && e.Note != "healthy" {
				rep.Downtime = append(rep.Downtime, downWindow{
					Inst: e.Inst, State: e.Note, StartMs: e.TimeUs / 1e3, EndMs: -1,
				})
				open[e.Inst] = len(rep.Downtime) - 1
			}
		case trace.KindRetry:
			if e.Note == "crash" {
				rep.CrashOrphans++
			}
		case trace.KindDispatch:
			if e.Note == "redispatch" {
				rep.Redispatches++
			}
		case trace.KindRecover:
			rep.SwapRecovered++
		case trace.KindFail:
			reasons[e.Note]++
		case trace.KindAlert:
			rep.Alerts = append(rep.Alerts, alertEntry{
				TimeMs: e.TimeUs / 1e3, Inst: e.Inst, Note: e.Note,
			})
		}
	}
	for reason, n := range reasons {
		rep.FailReasons = append(rep.FailReasons, failReason{Reason: reason, Count: n})
	}
	sort.Slice(rep.FailReasons, func(i, j int) bool {
		a, b := rep.FailReasons[i], rep.FailReasons[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return a.Reason < b.Reason
	})
}

// analyze computes the report: phase distributions over completed
// requests, the queueing onset, and preemption storms over all events.
func analyze(events []trace.Event, trees []*trace.RequestSpans, windowUs float64, stormMin int) report {
	rep := report{Events: len(events), Requests: len(trees)}

	var queue, prefill, xfer, decode, stall, swapped, e2e []float64
	type arrival struct{ startUs, queueUs float64 }
	var arrivals []arrival
	for _, rt := range trees {
		switch {
		case rt.Completed:
			rep.Completed++
		case rt.Cancelled:
			rep.Cancelled++
		case rt.Failed:
			rep.Failed++
		default:
			rep.InFlight++
		}
		if !rt.Completed {
			continue // partial lifecycles would skew the distributions
		}
		queue = append(queue, rt.Phases.QueueUs)
		prefill = append(prefill, rt.Phases.PrefillUs)
		if rt.Phases.XferUs > 0 {
			xfer = append(xfer, rt.Phases.XferUs)
		}
		decode = append(decode, rt.Phases.DecodeUs)
		if rt.Phases.StallUs > 0 {
			stall = append(stall, rt.Phases.StallUs)
		}
		if rt.Phases.SwappedUs > 0 {
			swapped = append(swapped, rt.Phases.SwappedUs)
		}
		e2e = append(e2e, rt.E2EUs())
		arrivals = append(arrivals, arrival{rt.StartUs, rt.Phases.QueueUs})
	}
	for _, d := range []struct {
		name string
		xs   []float64
	}{
		{"queue", queue}, {"prefill", prefill}, {"xfer:inst", xfer},
		{"decode", decode}, {"stall", stall}, {"swapped", swapped}, {"e2e", e2e},
	} {
		if len(d.xs) == 0 {
			continue
		}
		var sum float64
		for _, v := range d.xs {
			sum += v
		}
		rep.Phases = append(rep.Phases, phaseDist{
			Phase:   d.name,
			Count:   len(d.xs),
			P50Ms:   stats.Quantile(d.xs, 0.50) / 1e3,
			P95Ms:   stats.Quantile(d.xs, 0.95) / 1e3,
			P99Ms:   stats.Quantile(d.xs, 0.99) / 1e3,
			MeanMs:  sum / float64(len(d.xs)) / 1e3,
			TotalMs: sum / 1e3,
		})
	}

	// queueing onset: the first arrival (in arrival order) whose queueing
	// delay exceeds 2x the median — sustained climb, not a one-off blip,
	// because every later arrival behind it queues at least as long
	rep.QueueingOnsetMs = -1
	if len(arrivals) >= 4 {
		sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].startUs < arrivals[j].startUs })
		med := stats.Quantile(queue, 0.50)
		threshold := 2 * med
		if threshold < 1 { // all-zero queueing: any wait at all is onset
			threshold = 1
		}
		for _, a := range arrivals {
			if a.queueUs > threshold {
				rep.QueueingOnsetMs = a.startUs / 1e3
				break
			}
		}
	}

	// preemption storms: slide a window over preempt/swap_out times and
	// greedily take the densest non-overlapping windows
	var preempts []trace.Event
	for _, e := range events {
		switch e.Kind {
		case trace.KindPreempt, trace.KindSwapOut:
			preempts = append(preempts, e)
		}
		switch e.Kind {
		case trace.KindSwapOut:
			rep.SwapOutBytes += e.Bytes
		case trace.KindSwapIn:
			rep.SwapInBytes += e.Bytes
		}
	}
	sort.SliceStable(preempts, func(i, j int) bool { return preempts[i].TimeUs < preempts[j].TimeUs })
	for i := 0; i < len(preempts); {
		j := i
		for j < len(preempts) && preempts[j].TimeUs <= preempts[i].TimeUs+windowUs {
			j++
		}
		if j-i >= stormMin {
			seqs := map[trace.InstSeq]bool{}
			for _, e := range preempts[i:j] {
				seqs[trace.InstSeq{Inst: e.Inst, Seq: e.Seq}] = true
			}
			rep.Storms = append(rep.Storms, storm{
				StartMs:     preempts[i].TimeUs / 1e3,
				EndMs:       preempts[j-1].TimeUs / 1e3,
				Preemptions: j - i,
				Requests:    len(seqs),
			})
			i = j // non-overlapping: next storm starts after this one
			continue
		}
		i++
	}
	sort.SliceStable(rep.Storms, func(i, j int) bool {
		return rep.Storms[i].Preemptions > rep.Storms[j].Preemptions
	})
	analyzeTransfers(&rep, events)
	analyzeFaults(&rep, events)
	return rep
}

// analyzeTransfers aggregates disaggregation kv_ship events into
// per-lane transfer traffic. Each event carries the destination
// instance in Inst and the source plus pool roles in its note
// ("from=N link=prefill>decode").
func analyzeTransfers(rep *report, events []trace.Event) {
	type lane struct{ from, to int }
	agg := map[lane]*xferLink{}
	for _, e := range events {
		if e.Kind != trace.KindKVShip {
			continue
		}
		var from int
		var link string
		if n, err := fmt.Sscanf(e.Note, "from=%d link=%s", &from, &link); n != 2 || err != nil {
			continue // not a coordinator shipment note
		}
		rep.Transfers++
		rep.KVBytesShipped += e.Bytes
		k := lane{from, e.Inst}
		x := agg[k]
		if x == nil {
			x = &xferLink{From: from, To: e.Inst, Link: link}
			agg[k] = x
		}
		x.Transfers++
		x.Bytes += e.Bytes
		x.WireMs += e.DurUs / 1e3
	}
	for _, x := range agg {
		rep.XferLinks = append(rep.XferLinks, *x)
	}
	sort.Slice(rep.XferLinks, func(i, j int) bool {
		a, b := rep.XferLinks[i], rep.XferLinks[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
}

// print renders the report as text.
func (r report) print() {
	fmt.Printf("%d events, %d requests (%d completed, %d cancelled, %d failed, %d in flight)\n",
		r.Events, r.Requests, r.Completed, r.Cancelled, r.Failed, r.InFlight)
	if len(r.Phases) > 0 {
		fmt.Printf("\n%-8s %6s %12s %12s %12s %12s\n", "phase", "count", "p50 ms", "p95 ms", "p99 ms", "mean ms")
		for _, p := range r.Phases {
			fmt.Printf("%-8s %6d %12.3f %12.3f %12.3f %12.3f\n",
				p.Phase, p.Count, p.P50Ms, p.P95Ms, p.P99Ms, p.MeanMs)
		}
	}
	if r.QueueingOnsetMs >= 0 {
		fmt.Printf("\nqueueing onset: admission wait exceeded 2x median for arrivals from %.3f ms\n",
			r.QueueingOnsetMs)
	} else {
		fmt.Printf("\nqueueing onset: none (admission kept up with arrivals)\n")
	}
	if r.SwapOutBytes > 0 || r.SwapInBytes > 0 {
		fmt.Printf("swap traffic: %d bytes out, %d bytes in\n", r.SwapOutBytes, r.SwapInBytes)
	}
	if r.Transfers > 0 {
		fmt.Printf("\ntransfer traffic: %d KV shipments, %.1f MB over NIC\n",
			r.Transfers, float64(r.KVBytesShipped)/(1<<20))
		for _, x := range r.XferLinks {
			fmt.Printf("  %d->%d (%s): %d shipments, %.1f MB, %.1f ms wire\n",
				x.From, x.To, x.Link, x.Transfers, float64(x.Bytes)/(1<<20), x.WireMs)
		}
	}
	if len(r.Storms) == 0 {
		fmt.Println("preemption storms: none")
	} else {
		fmt.Printf("preemption storms (densest first):\n")
		for _, s := range r.Storms {
			fmt.Printf("  %.3f–%.3f ms: %d preemptions across %d requests\n",
				s.StartMs, s.EndMs, s.Preemptions, s.Requests)
		}
	}
	if len(r.Alerts) > 0 {
		fmt.Printf("\nalert timeline:\n")
		for _, a := range r.Alerts {
			if a.Inst > 0 {
				fmt.Printf("  %12.3f ms  inst %d  %s\n", a.TimeMs, a.Inst, a.Note)
			} else {
				fmt.Printf("  %12.3f ms  cluster %s\n", a.TimeMs, a.Note)
			}
		}
	}
	if len(r.Downtime) == 0 && r.CrashOrphans == 0 && len(r.FailReasons) == 0 {
		return
	}
	fmt.Printf("\nfault injection:\n")
	for _, w := range r.Downtime {
		if w.EndMs < 0 {
			fmt.Printf("  instance %d %s from %.3f ms (never recovered in trace)\n",
				w.Inst, w.State, w.StartMs)
			continue
		}
		fmt.Printf("  instance %d %s %.3f–%.3f ms (%.3f ms)\n",
			w.Inst, w.State, w.StartMs, w.EndMs, w.EndMs-w.StartMs)
	}
	fmt.Printf("  %d crash orphans, %d re-dispatches, %d swap-recovered\n",
		r.CrashOrphans, r.Redispatches, r.SwapRecovered)
	for _, fr := range r.FailReasons {
		fmt.Printf("  failed %d: %s\n", fr.Count, fr.Reason)
	}
}
