// Command diffkv-vet runs diffkv's determinism & sim-hygiene static
// analyzers (internal/analysis) over the module:
//
//	diffkv-vet ./...          # whole module, per-package severity config
//	diffkv-vet path/to/dir    # one directory, every check at error
//	diffkv-vet -list          # describe the checks
//
// Exit status: 0 when no error-severity diagnostics remain
// unsuppressed, 1 when at least one does (or, with -strict, a warning),
// 2 on usage or load failure. Suppress individual findings with
//
//	//diffkv:allow <check> -- <reason>
//
// trailing the offending line or alone on the line above; stale or
// reasonless directives are themselves errors (allowaudit).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"diffkv/internal/analysis"
)

func main() {
	var (
		listFlag   = flag.Bool("list", false, "list checks and exit")
		jsonFlag   = flag.Bool("json", false, "emit diagnostics as JSON")
		verbose    = flag.Bool("v", false, "report typecheck fallbacks, suppressions and timing")
		noTypes    = flag.Bool("no-types", false, "skip the go/types pass (pure syntactic analysis)")
		strictFlag = flag.Bool("strict", false, "treat warnings as errors")
	)
	flag.Parse()

	if *listFlag {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-12s %s\n", analysis.AllowAuditName, "allow directives must carry a reason and suppress a live diagnostic")
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	start := time.Now()
	failed := false
	for _, arg := range args {
		var (
			mod *analysis.Module
			cfg *analysis.Config
			err error
		)
		if arg == "./..." || arg == "..." {
			cwd, cwdErr := os.Getwd()
			if cwdErr != nil {
				fatal(cwdErr)
			}
			mod, err = analysis.LoadModule(cwd, analysis.LoadOptions{Types: !*noTypes})
			cfg = analysis.DefaultConfig()
		} else {
			// An explicit directory loads standalone with every check at
			// error severity — the mode scripts/vet.sh uses to prove the
			// gate fails on an injected-violation fixture.
			mod, _, err = analysis.LoadDir(arg)
			cfg = analysis.FixtureConfig()
		}
		if err != nil {
			fatal(err)
		}
		res := analysis.Run(mod, cfg)
		printResult(res, *jsonFlag, *verbose)
		if *verbose {
			fmt.Fprintf(os.Stderr, "diffkv-vet: %s: %d packages (%d typed), %d files, %d diagnostics, %d live suppressions, %.1fs\n",
				arg, res.Packages, res.TypedPackages, res.Files,
				len(res.Diagnostics), res.Suppressions, time.Since(start).Seconds())
			for _, pkg := range mod.Packages {
				if pkg.TypeErr != nil {
					fmt.Fprintf(os.Stderr, "diffkv-vet: %s: syntactic fallback: %v\n", pkg.ImportPath, pkg.TypeErr)
				}
			}
		}
		if len(res.Errors()) > 0 || (*strictFlag && len(res.Warnings()) > 0) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func printResult(res *analysis.Result, asJSON, verbose bool) {
	if asJSON {
		type jsonDiag struct {
			Check    string `json:"check"`
			Severity string `json:"severity"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		}
		out := struct {
			Packages    int        `json:"packages"`
			Files       int        `json:"files"`
			Diagnostics []jsonDiag `json:"diagnostics"`
			Suppressed  int        `json:"suppressed"`
		}{Packages: res.Packages, Files: res.Files}
		for _, d := range res.Diagnostics {
			if d.Suppressed {
				out.Suppressed++
				continue
			}
			out.Diagnostics = append(out.Diagnostics, jsonDiag{
				Check: d.Check, Severity: d.Severity.String(),
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
		return
	}
	for _, d := range res.Diagnostics {
		switch {
		case d.Suppressed:
			if verbose {
				fmt.Printf("%s [suppressed: %s]\n", d, d.SuppressedBy)
			}
		default:
			fmt.Printf("%s [%s]\n", d, d.Severity)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diffkv-vet:", err)
	os.Exit(2)
}
