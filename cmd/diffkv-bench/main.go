// Command diffkv-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	diffkv-bench -exp fig8            # one experiment
//	diffkv-bench -exp all             # everything (slow)
//	diffkv-bench -exp tab1 -fast      # reduced resolution
//	diffkv-bench -exp all -workers 1  # force sequential execution
//	diffkv-bench -list                # available experiment IDs
//	diffkv-bench -json BENCH_PR2.json # perf snapshot (kernels + wall times)
//	diffkv-bench -gate BENCH_PR5.json # fail if kernels regress vs snapshot
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"diffkv/internal/experiments"
	"diffkv/internal/report"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (fig2..fig17, tab1..tab3, or 'all')")
		fast    = flag.Bool("fast", false, "reduced resolution / sample counts")
		reps    = flag.Int("reps", 3, "repetitions per measurement")
		seed    = flag.Uint64("seed", 42, "root random seed")
		workers = flag.Int("workers", 0, "worker pool size (0 = NumCPU, 1 = sequential; output is identical)")
		list    = flag.Bool("list", false, "list experiment ids")
		format  = flag.String("format", "text", "output format: text|csv|markdown")
		jsonOut = flag.String("json", "", "write a perf snapshot (kernel ns/op + per-experiment wall time) to this file")
		gate    = flag.String("gate", "", "compare current kernel ns/op against this baseline snapshot; exit non-zero on regression")
		gateTol = flag.Float64("gate-tolerance", 0.20, "fractional slowdown tolerated by -gate before failing (0.20 = 20%)")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	if *jsonOut != "" {
		if err := writePerfJSON(*jsonOut, *seed, *workers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote perf snapshot to %s\n", *jsonOut)
		return
	}
	if *gate != "" {
		if err := runGate(*gate, *gateTol); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: diffkv-bench -exp <id>|all [-fast] [-reps N] [-seed S] [-workers W] | -json FILE | -gate FILE")
		os.Exit(2)
	}

	fmtSel, err := report.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	opts := experiments.Opts{Reps: *reps, Fast: *fast, Seed: *seed, Workers: *workers}
	for _, id := range ids {
		start := time.Now()
		tables, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := report.Write(os.Stdout, tables, fmtSel); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if fmtSel == report.FormatText {
			fmt.Printf("[%s took %.1fs]\n\n", id, time.Since(start).Seconds())
		}
	}
}
