package main

// Benchmark-regression harness: `diffkv-bench -json FILE` runs the kernel
// micro-benchmarks (shared with bench_test.go via internal/benchkernels, so
// both measure identical workloads) plus a wall-clock pass over the
// fast-mode experiment suite and writes a machine-readable snapshot. The
// checked-in BENCH_PR2.json pairs one such snapshot with the numbers
// recorded before the page-granular kernel rewrite, giving this and future
// PRs a perf trajectory to diff against.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"diffkv"
	"diffkv/internal/analysis"
	"diffkv/internal/benchkernels"
	"diffkv/internal/experiments"
	"diffkv/internal/offload"
	"diffkv/internal/telemetry"
)

// KernelResult is one micro-benchmark measurement.
type KernelResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// ExperimentResult is one experiment harness wall-time measurement
// (fast mode, one rep).
type ExperimentResult struct {
	ID     string  `json:"id"`
	WallMs float64 `json:"wall_ms"`
}

// OffloadGoodput is one cell of the swap-vs-recompute record: a full-size
// offload-experiment run (closed-loop MATH CoT, Llama3-8B on one L40) at
// one oversubscription level under one recovery policy.
type OffloadGoodput struct {
	KVBudgetFrac     float64 `json:"kv_budget_frac"`
	Policy           string  `json:"policy"`
	GoodputTokSec    float64 `json:"goodput_tok_per_sec"`
	ThroughputTokSec float64 `json:"throughput_tok_per_sec"`
	Preemptions      int     `json:"preemptions"`
	SwapOuts         int     `json:"swap_outs"`
	SwapOutMB        float64 `json:"swap_out_mb"`
	PCIeStallMs      float64 `json:"pcie_stall_ms"`
}

// ChaosGoodput is one cell of the fault-injection record: a full-size
// chaos-experiment run (3-instance oversubscribed DiffKV cluster, paced
// MATH CoT arrivals) at one crash rate under one recovery policy. The
// swap-vs-recompute goodput delta at each rate is the headline number:
// positive means the host tier carried swapped sequences through
// crash-with-restart instead of regenerating them.
type ChaosGoodput struct {
	CrashPerMin   float64 `json:"crash_per_min"`
	Policy        string  `json:"policy"`
	GoodputReqSec float64 `json:"goodput_req_per_sec"`
	TTFTP99Sec    float64 `json:"ttft_p99_sec"`
	Completed     int     `json:"completed"`
	Failed        int     `json:"failed"`
	Crashes       int     `json:"crashes"`
	Redispatches  int     `json:"redispatches"`
	SwapRecovered int     `json:"swap_recovered"`
	LostKVMB      float64 `json:"lost_kv_mb"`
}

// DisaggGoodput is one cell of the disaggregation record: a full-size
// disagg-experiment run (4x L40 DiffKV cluster, paced MMLU arrivals) at
// one pool split under one wire tier. Wire bytes scale with the tier —
// K4V2 ships under a third of FP16's bytes at identical request sets —
// and the colocated split {0, 0} is the no-transfer control.
type DisaggGoodput struct {
	Split         string  `json:"split"`
	Tier          string  `json:"tier"`
	GoodputReqSec float64 `json:"goodput_req_per_sec"`
	TTFTP99Sec    float64 `json:"ttft_p99_sec"`
	Completed     int     `json:"completed"`
	Transfers     int     `json:"transfers"`
	WireMB        float64 `json:"wire_mb"`
	XferSec       float64 `json:"xfer_sec"`
}

// ServingHotPathResult measures scheduler wall-clock cost: one
// scenario-built serving run (Llama3-8B, MATH, 32 closed-loop requests,
// 1024-token limit) timed end to end, reported as engine steps per
// wall-clock second. The traits row is pure scheduler overhead (no page
// manager), so it is the sensitive detector for regressions in the
// registry/session indirection on the hot path; best of three runs.
type ServingHotPathResult struct {
	Mode            string  `json:"mode"`
	Steps           int     `json:"steps"`
	WallMs          float64 `json:"wall_ms"`
	StepsPerSec     float64 `json:"steps_per_sec"`
	SimTokensPerSec float64 `json:"sim_tokens_per_sec"`
}

// TelemetryOverheadRow compares one Loop hot-path mode with and
// without a telemetry center attached (100ms sim-time sampling — 10x
// the default cadence — one SLO, saturation analyzer on: the full
// tick, not a stub). OverheadPct attributes the measured per-sample
// cost (samples x sample_ns_per_op) to the sampled run's wall time;
// a direct steps/sec diff is dominated by open-order scheduling noise
// on sub-second runs (step counts themselves vary across reps), so
// both raw rates are recorded but the attribution is the gate number.
// The acceptance target is <2% on the manager (DiffKV) row — the
// realistic serving path. The traits row is reported for context but
// exempt by construction: that microbench simulates ~1e5x real time
// (454 sim-seconds in ~4ms), so per-sim-second sampling there costs
// more than the entire simulator and no sim-cadence scheme can pass.
type TelemetryOverheadRow struct {
	Mode               string  `json:"mode"`
	BaseStepsPerSec    float64 `json:"base_steps_per_sec"`
	SampledStepsPerSec float64 `json:"sampled_steps_per_sec"`
	Samples            int64   `json:"samples"`
	SampledWallMs      float64 `json:"sampled_wall_ms"`
	OverheadPct        float64 `json:"overhead_pct"`
}

// TelemetryPerf records the telemetry center's cost: the idle Due
// gate and a full Sample tick in isolation (ns/op), and the Loop
// workload re-run with sampling enabled.
type TelemetryPerf struct {
	DueNsPerOp    float64                `json:"due_ns_per_op"`
	SampleNsPerOp float64                `json:"sample_ns_per_op"`
	LoopOverhead  []TelemetryOverheadRow `json:"loop_overhead"`
}

// PerfSnapshot is the full -json payload.
type PerfSnapshot struct {
	GoVersion   string             `json:"go_version"`
	NumCPU      int                `json:"num_cpu"`
	Workers     int                `json:"workers"`
	Kernels     []KernelResult     `json:"kernels"`
	Experiments []ExperimentResult `json:"experiments"`
	// Offload records swap-vs-recompute goodput at each oversubscription
	// level, and SwapBytes the per-tier PCIe cost of one swapped sequence
	// (compression moves fewer bytes than FP16).
	Offload   []OffloadGoodput           `json:"offload"`
	SwapBytes []experiments.SwapBytesRow `json:"swap_bytes"`
	// Chaos records swap-vs-recompute goodput under crash injection at
	// each crash rate (identical crash timelines per rate, so the delta
	// between policy rows is attributable to the recovery path alone).
	Chaos []ChaosGoodput `json:"chaos,omitempty"`
	// Disagg records prefill/decode pool-split goodput and wire traffic
	// per quant tier (PR 10): identical request sets per cell, so the
	// tier rows isolate the compression economics of the KV transfer.
	Disagg []DisaggGoodput `json:"disagg,omitempty"`
	// ServingHotPath times the v2-API serving path (scenario build +
	// Run): steps/sec must stay within noise of the pre-registry numbers.
	ServingHotPath []ServingHotPathResult `json:"serving_hot_path"`
	// LoopHotPath times the same request set driven by the always-on
	// Loop (sessions opened concurrently, unpaced background stepping)
	// instead of the caller-owned Run shim. The shapes differ by design
	// — online opens race the step cadence, so the loop runs many
	// smaller-batch steps where Run admits everything upfront — but
	// steps/sec must stay at least at the caller-driven level, or the
	// loop's lock/wakeup machinery has become the bottleneck.
	LoopHotPath []ServingHotPathResult `json:"loop_hot_path"`
	// Telemetry records the sampling cost of the PR 8 telemetry center
	// against the LoopHotPath baselines.
	Telemetry TelemetryPerf `json:"telemetry"`
	// Vet records one diffkv-vet pass over the module (PR 9): wall time
	// for parse + source-importer typecheck + all analyzers, and what it
	// found. Errors must be 0 in any committed snapshot — the vet.sh CI
	// gate enforces the same invariant on every push.
	Vet VetPerf `json:"vet"`
}

// VetPerf is one diffkv-vet pass over the module.
type VetPerf struct {
	WallMs        float64 `json:"wall_ms"`
	Packages      int     `json:"packages"`
	TypedPackages int     `json:"typed_packages"`
	Files         int     `json:"files"`
	Diagnostics   int     `json:"diagnostics"`
	Suppressions  int     `json:"suppressions"`
	Errors        int     `json:"errors"`
}

// measureVet runs the full static-analysis pass the way `diffkv-vet
// ./...` does (module load, typecheck, every analyzer, suppression
// audit) and reports its cost and findings.
func measureVet() (VetPerf, error) {
	start := time.Now()
	m, err := analysis.LoadModule(".", analysis.LoadOptions{Types: true})
	if err != nil {
		return VetPerf{}, err
	}
	res := analysis.Run(m, analysis.DefaultConfig())
	return VetPerf{
		WallMs:        float64(time.Since(start).Microseconds()) / 1e3,
		Packages:      res.Packages,
		TypedPackages: res.TypedPackages,
		Files:         res.Files,
		Diagnostics:   len(res.Diagnostics),
		Suppressions:  res.Suppressions,
		Errors:        len(res.Errors()),
	}, nil
}

// runServingHotPath measures both engine modes through the full v2
// stack: Scenario.Build resolves the method registry and the engine runs
// with session bookkeeping compiled in (no sessions open — the
// steady-state hot path).
func runServingHotPath(seed uint64) ([]ServingHotPathResult, error) {
	var out []ServingHotPathResult
	for _, mode := range []struct {
		label, method string
	}{
		{"traits-vLLM", "vLLM"},
		{"manager-DiffKV", "DiffKV"},
	} {
		var best ServingHotPathResult
		for rep := 0; rep < 3; rep++ {
			sc := diffkv.Scenario{
				Model: "Llama3-8B", Method: mode.method, MemFrac: 0.3,
				MaxGenLen: 1024,
				Workload:  diffkv.WorkloadSpec{Bench: "MATH", Requests: 32},
				Seed:      seed,
			}
			st, err := sc.Build()
			if err != nil {
				return nil, err
			}
			reqs := st.Requests()
			start := time.Now()
			res, err := st.Server.Run(reqs)
			if err != nil {
				return nil, err
			}
			wall := time.Since(start)
			steps := res.PromptSteps + res.GenSteps
			r := ServingHotPathResult{
				Mode:            mode.label,
				Steps:           steps,
				WallMs:          float64(wall.Microseconds()) / 1e3,
				StepsPerSec:     float64(steps) / wall.Seconds(),
				SimTokensPerSec: res.Throughput,
			}
			if r.StepsPerSec > best.StepsPerSec {
				best = r
			}
		}
		out = append(out, best)
	}
	return out, nil
}

// runLoopHotPath measures the same workload as runServingHotPath but
// driven by the always-on Loop: every request opened as a session from
// its own goroutine while the loop owns the step cadence, the shape a
// network gateway produces. Comparing steps/sec against ServingHotPath
// isolates the loop's serialization overhead; best of three runs.
func runLoopHotPath(seed uint64) ([]ServingHotPathResult, error) {
	var out []ServingHotPathResult
	for _, mode := range []struct {
		label, method string
	}{
		{"loop-traits-vLLM", "vLLM"},
		{"loop-manager-DiffKV", "DiffKV"},
	} {
		var best ServingHotPathResult
		for rep := 0; rep < 3; rep++ {
			sc := diffkv.Scenario{
				Model: "Llama3-8B", Method: mode.method, MemFrac: 0.3,
				MaxGenLen: 1024,
				Workload:  diffkv.WorkloadSpec{Bench: "MATH", Requests: 32},
				Seed:      seed,
			}
			st, err := sc.Build()
			if err != nil {
				return nil, err
			}
			reqs := st.Requests()
			start := time.Now()
			loop := st.StartLoop(diffkv.LoopConfig{})
			var wg sync.WaitGroup
			sessions := make([]*diffkv.Session, len(reqs))
			errs := make([]error, len(reqs))
			for i, r := range reqs {
				wg.Add(1)
				go func(i int, r diffkv.Request) {
					defer wg.Done()
					sessions[i], errs[i] = loop.Open(context.Background(), r, nil)
				}(i, r)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
			for _, s := range sessions {
				<-s.Done()
			}
			if err := loop.Shutdown(context.Background()); err != nil {
				return nil, err
			}
			wall := time.Since(start)
			m := loop.Metrics()
			r := ServingHotPathResult{
				Mode:            mode.label,
				Steps:           m.Steps,
				WallMs:          float64(wall.Microseconds()) / 1e3,
				StepsPerSec:     float64(m.Steps) / wall.Seconds(),
				SimTokensPerSec: m.Driver.ThroughputTokensPerSec,
			}
			if r.StepsPerSec > best.StepsPerSec {
				best = r
			}
		}
		out = append(out, best)
	}
	return out, nil
}

// measureTelemetry isolates the telemetry center's per-call cost: the
// Due gate at its not-yet-due steady state (what every Loop step pays)
// and a full Sample tick over a 4-instance observation with the
// analyzer and one SLO active (what a due tick pays).
func measureTelemetry() (dueNs, sampleNs float64) {
	mkObs := func(t float64) telemetry.Observation {
		o := telemetry.Observation{
			TimeUs:                 t,
			ThroughputTokensPerSec: 900,
			GoodputTokensPerSec:    850,
			InstancesUp:            4,
		}
		for i := 1; i <= 4; i++ {
			o.PerInstance = append(o.PerInstance, telemetry.InstanceObservation{
				Inst: i, QueueDepth: 3, Running: 8,
				UsedKVPages: 400, FreeKVPages: 100,
				ResidentTokens: 6000, MemoryTokens: 16000,
				Health: "healthy",
			})
		}
		return o
	}
	due := testing.Benchmark(func(b *testing.B) {
		c := telemetry.New(telemetry.Config{SampleIntervalUs: 1e6})
		c.Sample(mkObs(0))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if c.Due(1) { // just sampled at 0: never due again
				b.Fatal("unexpected due")
			}
		}
	})
	sample := testing.Benchmark(func(b *testing.B) {
		c := telemetry.New(telemetry.Config{
			SampleIntervalUs: 1,
			SLOs:             []telemetry.SLOSpec{{Metric: "ttft", Pctl: 95, TargetSec: 2}},
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Sample(mkObs(float64(i + 1)))
		}
	})
	perOp := func(r testing.BenchmarkResult) float64 {
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	return perOp(due), perOp(sample)
}

// measureTelemetryOverhead re-runs the Loop hot path with a
// full-featured telemetry center sampling every 100 simulated ms and
// attributes the measured per-sample cost to each run's wall time
// (see TelemetryOverheadRow for why that beats a steps/sec diff).
func measureTelemetryOverhead(seed uint64, base []ServingHotPathResult, sampleNs float64) ([]TelemetryOverheadRow, error) {
	var out []TelemetryOverheadRow
	for i, mode := range []struct {
		label, method string
	}{
		{"loop-traits-vLLM", "vLLM"},
		{"loop-manager-DiffKV", "DiffKV"},
	} {
		var best TelemetryOverheadRow
		for rep := 0; rep < 3; rep++ {
			sc := diffkv.Scenario{
				Model: "Llama3-8B", Method: mode.method, MemFrac: 0.3,
				MaxGenLen: 1024,
				Workload:  diffkv.WorkloadSpec{Bench: "MATH", Requests: 32},
				Seed:      seed,
				Observability: &diffkv.ObservabilitySpec{
					SampleIntervalMs: 100,
					Saturation:       &diffkv.SaturationConfig{},
					SLOs:             []diffkv.SLOSpec{{Metric: "ttft", Pctl: 95, TargetSec: 2}},
				},
			}
			st, err := sc.Build()
			if err != nil {
				return nil, err
			}
			reqs := st.Requests()
			start := time.Now()
			loop := st.StartLoop(diffkv.LoopConfig{})
			var wg sync.WaitGroup
			sessions := make([]*diffkv.Session, len(reqs))
			errs := make([]error, len(reqs))
			for i, r := range reqs {
				wg.Add(1)
				go func(i int, r diffkv.Request) {
					defer wg.Done()
					sessions[i], errs[i] = loop.Open(context.Background(), r, nil)
				}(i, r)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
			for _, s := range sessions {
				<-s.Done()
			}
			if err := loop.Shutdown(context.Background()); err != nil {
				return nil, err
			}
			wall := time.Since(start)
			m := loop.Metrics()
			r := TelemetryOverheadRow{
				Mode:               mode.label,
				SampledStepsPerSec: float64(m.Steps) / wall.Seconds(),
				Samples:            st.Telemetry.Snapshot().Samples,
				SampledWallMs:      float64(wall.Microseconds()) / 1e3,
			}
			if rep == 0 || r.SampledStepsPerSec > best.SampledStepsPerSec {
				best = r
			}
		}
		if i < len(base) {
			best.BaseStepsPerSec = base[i].StepsPerSec
		}
		best.OverheadPct = 100 * float64(best.Samples) * sampleNs / (best.SampledWallMs * 1e6)
		out = append(out, best)
	}
	return out, nil
}

// measureKernels runs every kernel micro-benchmark reps times and keeps
// each kernel's best (minimum ns/op) run: a single run is exposed to
// scheduler noise on a shared host — the BENCH_PR5 snapshot recorded a
// ~70% CompressedAttention1KScratch outlier that way — while the
// fastest of several runs approximates the noise-free cost.
func measureKernels(reps int) []KernelResult {
	if reps < 1 {
		reps = 1
	}
	var out []KernelResult
	for _, kb := range benchkernels.List() {
		var best KernelResult
		for rep := 0; rep < reps; rep++ {
			r := testing.Benchmark(kb.Fn)
			kr := KernelResult{
				Name:        kb.Name,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			if rep == 0 || kr.NsPerOp < best.NsPerOp {
				best = kr
			}
		}
		out = append(out, best)
	}
	return out
}

// writePerfJSON runs the perf snapshot and writes it to path.
func writePerfJSON(path string, seed uint64, workers int) error {
	snap := PerfSnapshot{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Workers:   workers,
		Kernels:   measureKernels(3),
	}
	for _, id := range experiments.IDs() {
		start := time.Now()
		if _, err := experiments.Run(id, experiments.Opts{
			Fast: true, Reps: 1, Seed: seed, Workers: workers,
		}); err != nil {
			return err
		}
		snap.Experiments = append(snap.Experiments, ExperimentResult{
			ID:     id,
			WallMs: float64(time.Since(start).Microseconds()) / 1e3,
		})
	}
	// swap-vs-recompute goodput at every oversubscription level (full-size
	// cells, matching `-exp offload` without -fast)
	for _, reserve := range experiments.OffloadReserves() {
		for _, policy := range offload.Policies() {
			res := experiments.OffloadRun(reserve, policy, 20, 2048, seed)
			snap.Offload = append(snap.Offload, OffloadGoodput{
				KVBudgetFrac:     1 - reserve,
				Policy:           policy,
				GoodputTokSec:    res.GoodputTokensPerSec,
				ThroughputTokSec: res.Throughput,
				Preemptions:      res.Preemptions,
				SwapOuts:         res.Offload.SwapOuts,
				SwapOutMB:        float64(res.Offload.SwapOutBytes) / (1 << 20),
				PCIeStallMs:      res.OffloadStallSeconds * 1e3,
			})
		}
	}
	snap.SwapBytes = experiments.OffloadSwapBytes()
	// fault-injection goodput at every crash rate (full-size cells,
	// matching `-exp chaos` without -fast)
	for _, rate := range experiments.ChaosRates(false) {
		for _, policy := range []string{offload.PolicyRecompute, offload.PolicySwap} {
			m := experiments.ChaosRun(rate, policy, 36, seed)
			snap.Chaos = append(snap.Chaos, ChaosGoodput{
				CrashPerMin:   rate,
				Policy:        policy,
				GoodputReqSec: m.GoodputReqPerSec,
				TTFTP99Sec:    m.TTFT.P99,
				Completed:     m.Completed,
				Failed:        m.Failed,
				Crashes:       m.Crashes,
				Redispatches:  m.Redispatches,
				SwapRecovered: m.SwapRecovered,
				LostKVMB:      float64(m.LostKVBytes) / (1 << 20),
			})
		}
	}
	// disaggregation goodput and wire traffic per pool split x tier
	// (full-size cells, matching `-exp disagg` without -fast)
	for _, split := range experiments.DisaggSplits(false) {
		for _, tier := range experiments.DisaggTiers() {
			m := experiments.DisaggRun(split, tier, 48, seed)
			row := DisaggGoodput{
				Split:         "colocated",
				Tier:          tier.String(),
				GoodputReqSec: m.GoodputReqPerSec,
				TTFTP99Sec:    m.TTFT.P99,
				Completed:     m.Completed,
			}
			if split[0] > 0 {
				row.Split = fmt.Sprintf("%d:%d", split[0], split[1])
			}
			if m.Disagg != nil {
				row.Transfers = m.Disagg.Transfers
				row.WireMB = float64(m.Disagg.KVBytesShipped) / (1 << 20)
				row.XferSec = m.Disagg.XferSeconds
			}
			snap.Disagg = append(snap.Disagg, row)
		}
	}
	hot, err := runServingHotPath(seed)
	if err != nil {
		return err
	}
	snap.ServingHotPath = hot
	loopHot, err := runLoopHotPath(seed)
	if err != nil {
		return err
	}
	snap.LoopHotPath = loopHot
	snap.Telemetry.DueNsPerOp, snap.Telemetry.SampleNsPerOp = measureTelemetry()
	if snap.Telemetry.LoopOverhead, err = measureTelemetryOverhead(seed, loopHot, snap.Telemetry.SampleNsPerOp); err != nil {
		return err
	}
	if snap.Vet, err = measureVet(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
