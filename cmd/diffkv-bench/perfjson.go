package main

// Benchmark-regression harness: `diffkv-bench -json FILE` runs the kernel
// micro-benchmarks (shared with bench_test.go via internal/benchkernels, so
// both measure identical workloads) plus a wall-clock pass over the
// fast-mode experiment suite and writes a machine-readable snapshot. The
// checked-in BENCH_PR2.json pairs one such snapshot with the numbers
// recorded before the page-granular kernel rewrite, giving this and future
// PRs a perf trajectory to diff against.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"diffkv/internal/benchkernels"
	"diffkv/internal/experiments"
	"diffkv/internal/offload"
)

// KernelResult is one micro-benchmark measurement.
type KernelResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// ExperimentResult is one experiment harness wall-time measurement
// (fast mode, one rep).
type ExperimentResult struct {
	ID     string  `json:"id"`
	WallMs float64 `json:"wall_ms"`
}

// OffloadGoodput is one cell of the swap-vs-recompute record: a full-size
// offload-experiment run (closed-loop MATH CoT, Llama3-8B on one L40) at
// one oversubscription level under one recovery policy.
type OffloadGoodput struct {
	KVBudgetFrac     float64 `json:"kv_budget_frac"`
	Policy           string  `json:"policy"`
	GoodputTokSec    float64 `json:"goodput_tok_per_sec"`
	ThroughputTokSec float64 `json:"throughput_tok_per_sec"`
	Preemptions      int     `json:"preemptions"`
	SwapOuts         int     `json:"swap_outs"`
	SwapOutMB        float64 `json:"swap_out_mb"`
	PCIeStallMs      float64 `json:"pcie_stall_ms"`
}

// PerfSnapshot is the full -json payload.
type PerfSnapshot struct {
	GoVersion   string             `json:"go_version"`
	NumCPU      int                `json:"num_cpu"`
	Workers     int                `json:"workers"`
	Kernels     []KernelResult     `json:"kernels"`
	Experiments []ExperimentResult `json:"experiments"`
	// Offload records swap-vs-recompute goodput at each oversubscription
	// level, and SwapBytes the per-tier PCIe cost of one swapped sequence
	// (compression moves fewer bytes than FP16).
	Offload   []OffloadGoodput           `json:"offload"`
	SwapBytes []experiments.SwapBytesRow `json:"swap_bytes"`
}

// writePerfJSON runs the perf snapshot and writes it to path.
func writePerfJSON(path string, seed uint64, workers int) error {
	snap := PerfSnapshot{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Workers:   workers,
	}
	for _, kb := range benchkernels.List() {
		r := testing.Benchmark(kb.Fn)
		snap.Kernels = append(snap.Kernels, KernelResult{
			Name:        kb.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	for _, id := range experiments.IDs() {
		start := time.Now()
		if _, err := experiments.Run(id, experiments.Opts{
			Fast: true, Reps: 1, Seed: seed, Workers: workers,
		}); err != nil {
			return err
		}
		snap.Experiments = append(snap.Experiments, ExperimentResult{
			ID:     id,
			WallMs: float64(time.Since(start).Microseconds()) / 1e3,
		})
	}
	// swap-vs-recompute goodput at every oversubscription level (full-size
	// cells, matching `-exp offload` without -fast)
	for _, reserve := range experiments.OffloadReserves() {
		for _, policy := range offload.Policies() {
			res := experiments.OffloadRun(reserve, policy, 20, 2048, seed)
			snap.Offload = append(snap.Offload, OffloadGoodput{
				KVBudgetFrac:     1 - reserve,
				Policy:           policy,
				GoodputTokSec:    res.GoodputTokensPerSec,
				ThroughputTokSec: res.Throughput,
				Preemptions:      res.Preemptions,
				SwapOuts:         res.Offload.SwapOuts,
				SwapOutMB:        float64(res.Offload.SwapOutBytes) / (1 << 20),
				PCIeStallMs:      res.OffloadStallSeconds * 1e3,
			})
		}
	}
	snap.SwapBytes = experiments.OffloadSwapBytes()
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
