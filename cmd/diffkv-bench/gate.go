package main

// Benchmark regression gate: `diffkv-bench -gate BASELINE.json` re-runs
// the kernel micro-benchmarks (best of three, the same measurement
// writePerfJSON records) and fails when any kernel regresses beyond the
// tolerance against the baseline snapshot. The baseline may be a plain
// PerfSnapshot (BENCH_PR2/3/5 style) or a before/after comparison
// document whose "after" member is one (BENCH_PR4 style) — the gate
// reads whichever kernel list the file carries.
//
// Snapshots are recorded on shared hosts whose load varies run to run,
// so raw ns/op drifts uniformly across the whole suite. The gate
// therefore normalizes each kernel's now/base ratio by the suite's
// median ratio before applying the tolerance: a host that is 10% busier
// shifts every kernel and cancels out, while one kernel regressing
// relative to its peers still fails.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// loadBaselineKernels extracts the kernel measurements from a baseline
// snapshot in either of the checked-in schemas.
func loadBaselineKernels(path string) ([]KernelResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Kernels []KernelResult `json:"kernels"`
		After   *struct {
			Kernels []KernelResult `json:"kernels"`
		} `json:"after"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("gate: %s: %w", path, err)
	}
	kernels := doc.Kernels
	if len(kernels) == 0 && doc.After != nil {
		kernels = doc.After.Kernels
	}
	if len(kernels) == 0 {
		return nil, fmt.Errorf("gate: %s carries no kernel measurements", path)
	}
	return kernels, nil
}

// hostFactor is the median now/base ratio over kernels present in both
// runs — the suite-wide speed shift attributable to host load.
func hostFactor(ratios []float64) float64 {
	if len(ratios) == 0 {
		return 1
	}
	rs := append([]float64(nil), ratios...)
	sort.Float64s(rs)
	n := len(rs)
	if n%2 == 1 {
		return rs[n/2]
	}
	return (rs[n/2-1] + rs[n/2]) / 2
}

// runGate compares freshly measured kernels against the baseline and
// returns an error when any regresses beyond tolerance (0.20 = 20%)
// after normalizing out the suite-wide host-speed shift.
func runGate(baselinePath string, tolerance float64) error {
	baseline, err := loadBaselineKernels(baselinePath)
	if err != nil {
		return err
	}
	base := make(map[string]KernelResult, len(baseline))
	for _, k := range baseline {
		base[k.Name] = k
	}

	current := measureKernels(3)
	var ratios []float64
	for _, k := range current {
		if b, ok := base[k.Name]; ok && b.NsPerOp > 0 {
			ratios = append(ratios, k.NsPerOp/b.NsPerOp)
		}
	}
	host := hostFactor(ratios)

	fmt.Printf("host factor (median now/base): %.3f\n", host)
	fmt.Printf("%-34s %12s %12s %9s %9s\n", "kernel", "base ns/op", "now ns/op", "raw", "adjusted")
	var regressions []string
	seen := map[string]bool{}
	for _, k := range current {
		seen[k.Name] = true
		b, ok := base[k.Name]
		if !ok || b.NsPerOp <= 0 {
			fmt.Printf("%-34s %12s %12.0f %9s %9s\n", k.Name, "-", k.NsPerOp, "new", "-")
			continue
		}
		raw := k.NsPerOp/b.NsPerOp - 1
		adj := k.NsPerOp/(b.NsPerOp*host) - 1
		flag := ""
		if adj > tolerance {
			flag = "  << REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%% after host normalization, tolerance %.0f%%)",
					k.Name, b.NsPerOp, k.NsPerOp, adj*100, tolerance*100))
		}
		fmt.Printf("%-34s %12.0f %12.0f %+8.1f%% %+8.1f%%%s\n",
			k.Name, b.NsPerOp, k.NsPerOp, raw*100, adj*100, flag)
	}
	for _, b := range baseline {
		if !seen[b.Name] {
			fmt.Printf("%-34s %12.0f %12s %9s %9s\n", b.Name, b.NsPerOp, "-", "gone", "-")
		}
	}
	if len(regressions) > 0 {
		msg := "gate: kernel regressions beyond tolerance:"
		for _, r := range regressions {
			msg += "\n  " + r
		}
		return fmt.Errorf("%s", msg)
	}
	fmt.Printf("gate: %d kernels within %.0f%% of %s\n", len(current), tolerance*100, baselinePath)
	return nil
}
