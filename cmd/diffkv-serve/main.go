// Command diffkv-serve runs the serving simulator on a chosen model,
// method and workload and prints throughput/latency metrics with the
// per-phase component breakdown.
//
// Usage:
//
//	diffkv-serve -model Llama3-8B -method DiffKV -bench MATH -requests 64
//	diffkv-serve -model QwQ-32B -method vLLM -gpus 2 -rate 0.5 -seconds 120
package main

import (
	"flag"
	"fmt"
	"log"

	"diffkv"
)

func main() {
	var (
		modelName = flag.String("model", "Llama3-8B", "model name")
		method    = flag.String("method", "DiffKV", "vLLM|Quest|SnapKV|Atom|KIVI|DiffKV")
		benchName = flag.String("bench", "MATH", "workload benchmark")
		gpus      = flag.Int("gpus", 1, "tensor-parallel GPUs")
		requests  = flag.Int("requests", 64, "closed-loop request count (ignored with -rate)")
		rate      = flag.Float64("rate", 0, "Poisson arrival rate (req/s); 0 = closed loop")
		seconds   = flag.Float64("seconds", 120, "Poisson horizon")
		maxGen    = flag.Int("maxgen", 4096, "generation limit")
		memFrac   = flag.Float64("memfrac", 0.3, "DiffKV resident memory fraction")
		seed      = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	model, err := diffkv.ModelByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	bench, err := diffkv.BenchmarkByName(*benchName)
	if err != nil {
		log.Fatal(err)
	}

	traits, err := diffkv.TraitsFor(*method, *memFrac)
	if err != nil {
		log.Fatal(err)
	}

	cfg := diffkv.ServerConfig{
		Model:     model,
		Cluster:   diffkv.NewCluster(diffkv.L40(), *gpus),
		Traits:    traits,
		MaxGenLen: *maxGen,
		Seed:      *seed,
	}
	if *method == "DiffKV" {
		cfg.UseManager = true
		cfg.HiFrac, cfg.LoFrac = 0.2, 0.25
	}
	srv, err := diffkv.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}

	gen := diffkv.NewRequestGen(bench, *maxGen, *seed)
	var reqs []diffkv.Request
	if *rate > 0 {
		reqs = gen.Poisson(*rate, *seconds)
	} else {
		reqs = gen.Batch(*requests)
	}

	res, err := srv.Run(reqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s | %s | %s | %d GPU(s) | %d requests\n",
		model.Name, *method, bench.Name, *gpus, len(reqs))
	fmt.Printf("  throughput:        %.0f tokens/s\n", res.Throughput)
	fmt.Printf("  avg batch size:    %.1f\n", res.AvgBatch)
	fmt.Printf("  per-token latency: %.4f s (incl. queueing)\n", res.AvgPerTokenLatency)
	fmt.Printf("  completed:         %d in %.1fs simulated\n", res.Completed, res.ElapsedSeconds)

	breakdown := func(name string, sched, mem, comp, exec float64) {
		tot := sched + mem + comp + exec
		if tot == 0 {
			return
		}
		fmt.Printf("  %s breakdown: scheduler %.1f%% | mem-mgmt %.1f%% | compressor %.1f%% | model %.1f%%\n",
			name, 100*sched/tot, 100*mem/tot, 100*comp/tot, 100*exec/tot)
	}
	breakdown("prompt", float64(res.Prompt.Scheduler), float64(res.Prompt.MemMgmt),
		float64(res.Prompt.Compressor), float64(res.Prompt.ModelExec))
	breakdown("generation", float64(res.Gen.Scheduler), float64(res.Gen.MemMgmt),
		float64(res.Gen.Compressor), float64(res.Gen.ModelExec))
}
