// Command diffkv-serve runs the serving simulator on a chosen model,
// method and workload and prints throughput/latency metrics with the
// per-phase component breakdown. The flags are a thin translation onto
// one diffkv.Scenario; -scenario replaces them with a spec file.
//
// Usage:
//
//	diffkv-serve -model Llama3-8B -method DiffKV -bench MATH -requests 64
//	diffkv-serve -model QwQ-32B -method vLLM -gpus 2 -rate 0.5 -seconds 120
//	diffkv-serve -scenario scenario.json
//	diffkv-serve -model Llama3-8B -method DiffKV -dump-scenario > scenario.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"diffkv"
)

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "load the full configuration from a scenario JSON file (overrides the other flags)")
		dump         = flag.Bool("dump-scenario", false, "print the flags as a scenario JSON spec and exit")
		modelName    = flag.String("model", "Llama3-8B", "model name")
		method       = flag.String("method", "DiffKV", "registered serving method")
		benchName    = flag.String("bench", "MATH", "workload benchmark")
		gpus         = flag.Int("gpus", 1, "tensor-parallel GPUs")
		requests     = flag.Int("requests", 64, "closed-loop request count (ignored with -rate)")
		rate         = flag.Float64("rate", 0, "Poisson arrival rate (req/s); 0 = closed loop")
		seconds      = flag.Float64("seconds", 120, "Poisson horizon")
		maxGen       = flag.Int("maxgen", 4096, "generation limit")
		memFrac      = flag.Float64("memfrac", 0.3, "DiffKV resident memory fraction")
		preempt      = flag.String("preempt", "recompute", "preemption recovery policy")
		hostGB       = flag.Float64("hostmem", 0, "host-memory offload tier size in GiB (0 disables)")
		reserve      = flag.Float64("reserve", 0, "memory reserve fraction (0 = default 0.1; raise to oversubscribe KV)")
		seed         = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	var sc *diffkv.Scenario
	if *scenarioPath != "" {
		var err error
		if sc, err = diffkv.LoadScenario(*scenarioPath); err != nil {
			log.Fatal(err)
		}
	} else {
		sc = &diffkv.Scenario{
			Model:         *modelName,
			Method:        *method,
			MemFrac:       *memFrac,
			GPUs:          *gpus,
			MaxGenLen:     *maxGen,
			MemoryReserve: *reserve,
			Preemption:    *preempt,
			HostMemoryGB:  *hostGB,
			Workload: diffkv.WorkloadSpec{
				Bench:      *benchName,
				Requests:   *requests,
				RatePerSec: *rate,
			},
			Seed: *seed,
		}
		if *rate > 0 {
			sc.Workload.Requests = 0
			sc.Workload.Seconds = *seconds
		}
	}
	if *dump {
		data, err := json.MarshalIndent(sc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(append(data, '\n'))
		return
	}

	st, err := sc.Build()
	if err != nil {
		log.Fatal(err)
	}
	if st.Server == nil {
		log.Fatal("diffkv-serve drives a single instance; use diffkv-cluster for scenarios with a cluster spec")
	}
	reqs := st.Requests()
	res, err := st.Server.Run(reqs)
	if err != nil {
		log.Fatal(err)
	}

	benchLabel := "trace"
	if st.Benchmark != nil {
		benchLabel = st.Benchmark.Name
	}
	fmt.Printf("%s | %s | %s | %d GPU(s) | %d requests\n",
		st.Model.Name, sc.Method, benchLabel, st.Scenario.GPUs, len(reqs))
	fmt.Printf("  throughput:        %.0f tokens/s\n", res.Throughput)
	fmt.Printf("  goodput:           %.0f tokens/s (completed requests only)\n", res.GoodputTokensPerSec)
	fmt.Printf("  avg batch size:    %.1f\n", res.AvgBatch)
	fmt.Printf("  per-token latency: %.4f s (incl. queueing)\n", res.AvgPerTokenLatency)
	fmt.Printf("  completed:         %d in %.1fs simulated\n", res.Completed, res.ElapsedSeconds)
	if res.Preemptions > 0 || res.Offload.SwapOuts > 0 {
		fmt.Printf("  preemptions:       %d (%s recovery)\n", res.Preemptions, st.Scenario.Preemption)
	}
	if m := res.Offload; m.SwapOuts > 0 || m.PrefixSpills > 0 {
		fmt.Printf("  offload:           %d swaps out / %d in | %.1f MB moved | %.1f ms PCIe (%.1f ms stalled) | %d thrash\n",
			m.SwapOuts, m.SwapIns,
			float64(m.SwapOutBytes+m.SwapInBytes)/(1<<20),
			res.OffloadTransferSeconds*1e3, res.OffloadStallSeconds*1e3, m.ThrashEvents)
		if m.PrefixSpills > 0 {
			fmt.Printf("  host prefix tier:  %d spills, %d hits (%d tokens)\n",
				m.PrefixSpills, m.PrefixHits, m.PrefixHitTokens)
		}
	}

	printPhase := func(name string, sched, mem, comp, exec, off float64) {
		tot := sched + mem + comp + exec + off
		if tot == 0 {
			return
		}
		line := fmt.Sprintf("  %s breakdown: scheduler %.1f%% | mem-mgmt %.1f%% | compressor %.1f%% | model %.1f%%",
			name, 100*sched/tot, 100*mem/tot, 100*comp/tot, 100*exec/tot)
		if off > 0 {
			line += fmt.Sprintf(" | offload %.1f%%", 100*off/tot)
		}
		fmt.Println(line)
	}
	printPhase("prompt", float64(res.Prompt.Scheduler), float64(res.Prompt.MemMgmt),
		float64(res.Prompt.Compressor), float64(res.Prompt.ModelExec), float64(res.Prompt.Offload))
	printPhase("generation", float64(res.Gen.Scheduler), float64(res.Gen.MemMgmt),
		float64(res.Gen.Compressor), float64(res.Gen.ModelExec), float64(res.Gen.Offload))
}
