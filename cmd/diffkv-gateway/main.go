// Command diffkv-gateway boots a serving or cluster stack from a
// scenario spec and serves it over HTTP: an OpenAI-style
// /v1/completions endpoint with SSE token streaming, /healthz, and a
// Prometheus-style /metrics endpoint. The engine runs under an
// always-on Loop, so concurrent clients submit work while the step
// cadence is owned by one background goroutine; SIGINT/SIGTERM drains
// in-flight sessions through Loop.Shutdown before exiting.
//
// Usage:
//
//	diffkv-gateway -scenario scenario.json
//	diffkv-gateway -model Llama3-8B -method DiffKV -listen 127.0.0.1:8080
//	diffkv-gateway -chaos 2                # 2-instance cluster, random crashes
//	curl -N -d '{"prompt":"hello","max_tokens":32,"stream":true}' \
//	    http://127.0.0.1:8080/v1/completions
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"diffkv"
	"diffkv/internal/httpapi"
)

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "load the configuration from a scenario JSON file (overrides the other flags)")
		listen       = flag.String("listen", "", "HTTP listen address (overrides the scenario's gateway.listen; default 127.0.0.1:8080)")
		modelName    = flag.String("model", "Llama3-8B", "model name (flag mode)")
		method       = flag.String("method", "DiffKV", "registered serving method (flag mode)")
		memFrac      = flag.Float64("memfrac", 0.3, "DiffKV resident memory fraction (flag mode)")
		maxGen       = flag.Int("maxgen", 4096, "generation limit (flag mode)")
		timeScale    = flag.Float64("timescale", -1, "simulated-to-wall time pacing: 1 = real time, 0 = flat out (-1 keeps the scenario's value)")
		seed         = flag.Uint64("seed", 42, "random seed (flag mode)")
		debugFlag    = flag.Bool("debug", false, "enable request tracing and the /debug routes even without an observability spec")
		perfettoOut  = flag.String("perfetto", "", "write the retained trace as a Perfetto file here on shutdown (overrides the scenario's observability.perfetto_path)")
		instances    = flag.Int("instances", 0, "flag mode: serve an N-instance cluster instead of a single engine")
		chaosRate    = flag.Float64("chaos", 0, "flag mode: inject random instance crashes at this rate per instance per minute (implies a 2-instance cluster)")
		chaosDown    = flag.Float64("chaos-down", 5, "mean crash downtime in seconds (with -chaos)")
	)
	flag.Parse()

	var sc *diffkv.Scenario
	if *scenarioPath != "" {
		var err error
		if sc, err = diffkv.LoadScenario(*scenarioPath); err != nil {
			log.Fatal(err)
		}
	} else {
		sc = &diffkv.Scenario{
			Model:     *modelName,
			Method:    *method,
			MemFrac:   *memFrac,
			MaxGenLen: *maxGen,
			// the gateway's workload arrives over HTTP; the spec only
			// shapes the stack, so any benchmark satisfies validation
			Workload: diffkv.WorkloadSpec{Bench: "MATH"},
			Seed:     *seed,
		}
		if *instances > 0 {
			sc.Cluster = &diffkv.ClusterSpec{Instances: *instances, Routing: diffkv.RouteLeastLoaded}
		}
		if *chaosRate > 0 {
			// fault injection needs survivors to re-dispatch to
			if sc.Cluster == nil {
				sc.Cluster = &diffkv.ClusterSpec{Instances: 2, Routing: diffkv.RouteLeastLoaded}
			}
			sc.Faults = &diffkv.FaultsSpec{
				CrashRatePerMin: *chaosRate,
				MeanDownSec:     *chaosDown,
			}
		}
	}
	gw := diffkv.GatewaySpec{}
	if sc.Gateway != nil {
		gw = *sc.Gateway
	}
	if gw.Listen == "" {
		gw.Listen = "127.0.0.1:8080"
	}
	if *listen != "" {
		gw.Listen = *listen
	}
	if *timeScale >= 0 {
		gw.TimeScale = *timeScale
	}
	if gw.DrainTimeoutSec <= 0 {
		gw.DrainTimeoutSec = 30
	}
	obs := diffkv.ObservabilitySpec{}
	if sc.Observability != nil {
		obs = *sc.Observability
	}
	if *debugFlag {
		obs.Debug = true
	}
	if *perfettoOut != "" {
		obs.PerfettoPath = *perfettoOut
	}
	var col *diffkv.TraceCollector
	if sc.Observability != nil || obs.Debug || obs.PerfettoPath != "" {
		col = diffkv.NewTraceCollector(obs.TraceEvents)
		sc.Tracer = col
	}
	// -debug enables the telemetry center even without an explicit
	// observability.slos/saturation/sample_interval_ms section, so the
	// /debug/telemetry routes and diffkv-top always have data to show
	if obs.Debug && !obs.Telemetry() {
		obs.SampleIntervalMs = 1000
	}
	sc.Observability = &obs

	st, err := sc.Build()
	if err != nil {
		log.Fatal(err)
	}
	loop := st.StartLoop(diffkv.LoopConfig{TimeScale: gw.TimeScale})
	apiCfg := httpapi.Config{
		Loop:             loop,
		ModelName:        st.Model.Name,
		DefaultMaxTokens: gw.DefaultMaxTokens,
		Telemetry:        st.Telemetry,
		Pprof:            obs.Debug,
	}
	if col != nil && obs.Debug {
		apiCfg.Trace = col
	}
	api, err := httpapi.New(apiCfg)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", gw.Listen)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: api.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()

	shape := "single instance"
	if st.Cluster != nil {
		shape = fmt.Sprintf("%d-instance cluster (%s routing)",
			len(st.Cluster.Engines()), st.Cluster.Policy())
	}
	if sc.Faults != nil {
		shape += " + fault injection"
	}
	log.Printf("diffkv-gateway: %s | %s | %s | listening on http://%s (timescale %g)",
		st.Model.Name, sc.Method, shape, ln.Addr(), gw.TimeScale)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("diffkv-gateway: %v — draining (up to %gs)", s, gw.DrainTimeoutSec)
	case err := <-errCh:
		log.Fatalf("diffkv-gateway: serve: %v", err)
	}

	drain := time.Duration(gw.DrainTimeoutSec * float64(time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// loop first: new Opens shed with 503 while in-flight sessions finish,
	// then the HTTP server closes once their streams have ended
	if err := loop.Shutdown(ctx); err != nil {
		log.Printf("diffkv-gateway: drain: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("diffkv-gateway: http shutdown: %v", err)
	}
	if col != nil && obs.PerfettoPath != "" {
		if err := writePerfetto(col, obs.PerfettoPath); err != nil {
			log.Printf("diffkv-gateway: perfetto: %v", err)
		} else {
			log.Printf("diffkv-gateway: wrote trace (%d events, %d dropped) to %s — open in ui.perfetto.dev",
				col.Retained(), col.Dropped(), obs.PerfettoPath)
		}
	}
	m := loop.Metrics()
	log.Printf("diffkv-gateway: done — %d opened, %d completed, %d cancelled, %d steps, %.1fs simulated",
		m.Opened, m.Completed, m.Driver.Cancelled, m.Steps, m.SimSeconds)
	if d := m.Driver; d.Crashes > 0 || d.Failed > 0 {
		log.Printf("diffkv-gateway: faults — %d crashes, %d restarts, %d re-dispatched, %d failed, %d swap-recovered",
			d.Crashes, d.Restarts, d.Redispatches, d.Failed, d.SwapRecovered)
	}
}

// writePerfetto dumps the collector as a Perfetto trace-event file.
func writePerfetto(col *diffkv.TraceCollector, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := col.WritePerfetto(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
