// Command diffkv-calibrate sweeps the compression-policy thresholds
// (αh, αl) for one model on the MATH training split and recommends the
// best setting — the paper's Fig. 10 calibration workflow.
//
// Usage:
//
//	diffkv-calibrate -model Llama3-8B
//	diffkv-calibrate -model QwQ-32B -seqs 5
package main

import (
	"flag"
	"fmt"
	"log"

	"diffkv"
)

func main() {
	var (
		modelName = flag.String("model", "Llama3-8B", "model to calibrate")
		seqs      = flag.Int("seqs", 3, "calibration sequences per setting")
		seed      = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	model, err := diffkv.ModelByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	bench, err := diffkv.BenchmarkByName("MATH-train")
	if err != nil {
		log.Fatal(err)
	}
	promptLen, genLen := bench.EvalLen()

	run := func(p diffkv.PolicyParams) (acc, mem float64) {
		eng, err := diffkv.NewEngine(diffkv.EngineConfig{
			Model: model, Params: p, DensityScale: bench.DensityScale, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		var errSum, memSum float64
		for s := 0; s < *seqs; s++ {
			res, err := eng.RunSequence(promptLen, genLen, uint64(s))
			if err != nil {
				log.Fatal(err)
			}
			errSum += res.OutputErr / float64(*seqs)
			memSum += res.MemFrac / float64(*seqs)
		}
		return bench.Accuracy(model.Name, errSum), memSum
	}

	base := diffkv.DefaultParams(model.Name)
	fp16 := bench.FP16[model.Name]
	fmt.Printf("Calibrating %s on MATH-train (FP16 reference %.1f)\n\n", model.Name, fp16)

	// Phase 1: αh sweep
	fmt.Printf("%-6s %-10s %-8s\n", "αh", "accuracy", "memory")
	bestAH, bestScore := base.AlphaH, -1.0
	for _, ah := range []float64{1, 2, 3, 4, 5} {
		p := base
		p.AlphaH = ah
		acc, mem := run(p)
		fmt.Printf("%-6.0f %-10.1f %.1f%%\n", ah, acc, 100*mem)
		// prefer accuracy, break ties toward less memory
		score := acc - 2*mem
		if score > bestScore {
			bestScore, bestAH = score, ah
		}
	}

	// Phase 2: αl sweep with the chosen αh
	fmt.Printf("\n%-6s %-10s %-8s (αh=%.0f)\n", "αl", "accuracy", "memory", bestAH)
	bestAL, bestScore2 := base.AlphaL, -1.0
	for _, al := range []float64{0, 0.02, 0.04, 0.06, 0.08, 0.1} {
		p := base
		p.AlphaH = bestAH
		p.AlphaL = al
		acc, mem := run(p)
		fmt.Printf("%-6.2f %-10.1f %.1f%%\n", al, acc, 100*mem)
		score := acc - 2*mem
		if score > bestScore2 {
			bestScore2, bestAL = score, al
		}
	}

	fmt.Printf("\nrecommended: αh=%.0f αl=%.2f (paper's choice for this family: αh=%.0f αl=%.2f)\n",
		bestAH, bestAL, base.AlphaH, base.AlphaL)
}
