// Command diffkv-top is a live terminal dashboard over the telemetry
// center: per-instance occupancy and saturation headroom with
// sparkline trends, merged latency percentiles, SLO burn rates and the
// recent alert timeline. It polls a running gateway's /debug/telemetry
// route, or replays a recorded trace file offline — same renderer,
// same layout, so what you watch live is what you read post-mortem.
//
// Usage:
//
//	diffkv-top                              # poll http://127.0.0.1:8080
//	diffkv-top -url http://host:8080 -interval 500ms
//	diffkv-top -once                        # one frame, no screen control
//	diffkv-top -trace trace.jsonl           # offline replay (implies -once)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"diffkv/internal/telemetry"
	"diffkv/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("diffkv-top: ")
	var (
		url       = flag.String("url", "http://127.0.0.1:8080", "gateway base URL (live mode)")
		interval  = flag.Duration("interval", time.Second, "refresh cadence (live mode)")
		once      = flag.Bool("once", false, "render one frame and exit (no screen control)")
		tracePath = flag.String("trace", "", "replay this trace file offline instead of polling a gateway")
	)
	flag.Parse()

	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		events, err := trace.ReadEvents(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if len(events) == 0 {
			log.Fatal("no events in trace")
		}
		render(os.Stdout, telemetry.Replay(events))
		return
	}

	fetch := func() (telemetry.Snapshot, error) {
		var snap telemetry.Snapshot
		resp, err := http.Get(*url + "/debug/telemetry")
		if err != nil {
			return snap, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return snap, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
		}
		err = json.NewDecoder(resp.Body).Decode(&snap)
		return snap, err
	}

	if *once {
		snap, err := fetch()
		if err != nil {
			log.Fatal(err)
		}
		render(os.Stdout, snap)
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	var buf strings.Builder
	for {
		snap, err := fetch()
		buf.Reset()
		buf.WriteString("\x1b[H\x1b[2J") // home + clear: one write, no flicker
		if err != nil {
			fmt.Fprintf(&buf, "diffkv-top: %v (retrying every %s)\n", err, *interval)
		} else {
			render(&buf, snap)
			fmt.Fprintf(&buf, "\n%s  refresh %s  ^C to quit\n", *url, *interval)
		}
		os.Stdout.WriteString(buf.String())
		select {
		case <-ticker.C:
		case <-sig:
			fmt.Println()
			return
		}
	}
}

// sparkBlocks maps a normalized value to a glyph; space keeps all-zero
// tails visually flat rather than a row of minimum-height bars.
var sparkBlocks = []rune(" ▁▂▃▄▅▆▇█")

// spark renders values (oldest first) as a unicode sparkline scaled to
// the tail's own maximum.
func spark(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		i := 0
		if max > 0 && v > 0 {
			i = 1 + int(v/max*float64(len(sparkBlocks)-2))
			if i >= len(sparkBlocks) {
				i = len(sparkBlocks) - 1
			}
		}
		b.WriteRune(sparkBlocks[i])
	}
	return b.String()
}

// humanBytes renders a byte count with a binary-prefix unit.
func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// render draws one full dashboard frame.
func render(w io.Writer, s telemetry.Snapshot) {
	mode := "live"
	if s.Offline {
		mode = "offline replay"
	}
	c := s.Cluster
	fmt.Fprintf(w, "diffkv-top — %s | sim %.1fs | %d samples | %d up | %d completed, %d rejected\n",
		mode, s.TimeUs/1e6, s.Samples, c.InstancesUp, c.Completed, c.Rejected)
	fmt.Fprintf(w, "throughput %8.1f tok/s   goodput %8.1f tok/s   %s\n",
		c.ThroughputTokensPerSec, c.GoodputTokensPerSec, spark(c.GoodputSpark))
	if !s.Offline {
		fmt.Fprintf(w, "headroom   %7.1f%%  (capacity %.0f tok, demand %.0f tok, slope %+.4f/s",
			c.Headroom*100, c.CapacityTokens, c.DemandTokens, c.HeadroomSlopePerSec)
		if c.TimeToSaturationSec > 0 {
			fmt.Fprintf(w, ", saturates in %.1fs", c.TimeToSaturationSec)
		}
		fmt.Fprintf(w, ")")
		if c.Advisory != "" {
			fmt.Fprintf(w, "  [%s]", strings.ToUpper(c.Advisory))
		}
		fmt.Fprintf(w, "   %s\n", spark(c.HeadroomSpark))
	}

	if len(s.Instances) > 0 {
		fmt.Fprintf(w, "\n%4s %-9s %5s %4s %5s %10s %9s %8s %8s %6s %-10s %s\n",
			"inst", "health", "queue", "run", "swap", "kv pages", "resident", "swapped", "host", "headrm", "advisory", "queue trend")
		for _, in := range s.Instances {
			health := in.Health
			if health == "" {
				health = "healthy"
			}
			headrm := "-"
			if !s.Offline {
				headrm = fmt.Sprintf("%5.1f%%", in.Headroom*100)
			}
			fmt.Fprintf(w, "%4d %-9s %5d %4d %5d %10s %9d %8d %8s %6s %-10s %s\n",
				in.Inst, health, in.QueueDepth, in.Running, in.Swapped,
				fmt.Sprintf("%d/%d", in.UsedKVPages, in.UsedKVPages+in.FreeKVPages),
				in.ResidentTokens, in.SwappedTokens, humanBytes(in.HostBytes),
				headrm, in.Advisory, spark(in.QueueSpark))
		}
	}

	if len(s.Latency) > 0 {
		keys := make([]string, 0, len(s.Latency))
		for k := range s.Latency {
			if s.Latency[k].Count > 0 {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		if len(keys) > 0 {
			fmt.Fprintf(w, "\n%-6s %8s %10s %10s %10s %10s\n",
				"lat", "count", "p50 ms", "p95 ms", "p99 ms", "max ms")
			for _, k := range keys {
				l := s.Latency[k]
				fmt.Fprintf(w, "%-6s %8d %10.3f %10.3f %10.3f %10.3f\n",
					k, l.Count, l.P50Sec*1e3, l.P95Sec*1e3, l.P99Sec*1e3, l.MaxSec*1e3)
			}
		}
	}

	if len(s.SLOs) > 0 {
		fmt.Fprintf(w, "\n%-8s %-18s %9s %9s %s\n", "slo", "target", "fast burn", "slow burn", "state")
		for _, o := range s.SLOs {
			target := fmt.Sprintf("p%g <= %gs", o.Pctl, o.TargetSec)
			if o.Metric == "goodput" {
				target = fmt.Sprintf(">= %g tok/s", o.FloorTokensPerSec)
			}
			state := "ok"
			if o.Firing {
				state = "FIRING"
			}
			fmt.Fprintf(w, "%-8s %-18s %9.2f %9.2f %s\n",
				o.Metric, target, o.FastBurn, o.SlowBurn, state)
		}
	}

	if len(s.Alerts) > 0 {
		fmt.Fprintf(w, "\nalerts (%d):\n", len(s.Alerts))
		start := 0
		if len(s.Alerts) > 10 {
			start = len(s.Alerts) - 10
			fmt.Fprintf(w, "  ... %d earlier\n", start)
		}
		for _, a := range s.Alerts[start:] {
			where := "cluster"
			if a.Inst > 0 {
				where = fmt.Sprintf("inst %d", a.Inst)
			}
			fmt.Fprintf(w, "  %12.3f ms  %-8s %s\n", a.TimeUs/1e3, where, a.Note)
		}
	}
}
