// Command diffkv-cluster runs the multi-instance cluster simulator: N
// serving engines behind a router, under Poisson arrivals with shared
// prompt prefixes, and prints per-policy SLO metrics (TTFT/TPOT
// percentiles, goodput, utilization, load imbalance, shed count).
//
// Usage:
//
//	diffkv-cluster -instances 4 -rate 10 -seconds 60
//	diffkv-cluster -policy prefix-affinity -method DiffKV -trace events.jsonl
//	diffkv-cluster -policy all -bench MMLU -groups 16 -prefixlen 768
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"diffkv"
)

func main() {
	var (
		instances  = flag.Int("instances", 4, "number of serving instances")
		modelName  = flag.String("model", "Llama3-8B", "model name")
		method     = flag.String("method", "vLLM", "vLLM|Quest|SnapKV|Atom|KIVI|DiffKV")
		benchName  = flag.String("bench", "MMLU", "workload benchmark")
		policy     = flag.String("policy", "all", "round-robin|least-loaded|prefix-affinity|all")
		rate       = flag.Float64("rate", 10, "Poisson arrival rate (req/s, whole cluster)")
		seconds    = flag.Float64("seconds", 60, "arrival horizon")
		groups     = flag.Int("groups", 16, "shared-prefix groups (0 = no shared prefixes)")
		prefixLen  = flag.Int("prefixlen", 768, "shared prefix length (tokens)")
		sharedFrac = flag.Float64("sharedfrac", 0.9, "fraction of requests in a prefix group")
		cacheG     = flag.Int("cachegroups", 8, "per-instance prefix-cache capacity (groups)")
		maxQueue   = flag.Int("maxqueue", 128, "admission bound: per-instance queue depth (0 = never shed)")
		maxGen     = flag.Int("maxgen", 256, "generation limit")
		memFrac    = flag.Float64("memfrac", 0.3, "DiffKV resident memory fraction")
		preempt    = flag.String("preempt", "recompute", "preemption recovery: recompute|swap|compress-swap (DiffKV only)")
		hostGB     = flag.Float64("hostmem", 0, "per-instance host offload tier in GiB (0 disables; DiffKV only)")
		reserve    = flag.Float64("reserve", 0, "memory reserve fraction (0 = default; raise to oversubscribe KV)")
		ttftSLO    = flag.Float64("ttft-slo", 2.0, "TTFT SLO (seconds) for goodput")
		tpotSLO    = flag.Float64("tpot-slo", 0.1, "TPOT SLO (seconds/token) for goodput")
		tracePath  = flag.String("trace", "", "write trace events as JSON lines to this file")
		seed       = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	model, err := diffkv.ModelByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	bench, err := diffkv.BenchmarkByName(*benchName)
	if err != nil {
		log.Fatal(err)
	}
	traits, err := diffkv.TraitsFor(*method, *memFrac)
	if err != nil {
		log.Fatal(err)
	}

	policies := diffkv.RoutingPolicies()
	if *policy != "all" {
		policies = []string{*policy}
	}

	pc := diffkv.PrefixConfig{Groups: *groups, PrefixLen: *prefixLen, SharedFrac: *sharedFrac}
	fmt.Printf("%d instances | %s | %s | %s | %.1f req/s for %.0fs | %d prefix groups x %d tokens (%.0f%% shared)\n\n",
		*instances, model.Name, *method, bench.Name, *rate, *seconds,
		pc.Groups, pc.PrefixLen, 100*pc.SharedFrac)

	header := fmt.Sprintf("%-16s %8s %11s %11s %11s %9s %14s %6s %10s %8s %6s",
		"policy", "done", "ttft-p50(s)", "ttft-p95(s)", "ttft-p99(s)", "tpot-p95", "goodput(req/s)", "util", "imbalance", "hit-frac", "shed")
	fmt.Println(header)
	for range header {
		fmt.Print("-")
	}
	fmt.Println()

	for _, pol := range policies {
		var collector *diffkv.TraceCollector
		cfg := diffkv.ClusterServerConfig{
			Instances:     *instances,
			Policy:        pol,
			MaxQueueDepth: *maxQueue,
			TTFTSLOUs:     *ttftSLO * 1e6,
			TPOTSLOUs:     *tpotSLO * 1e6,
			Seed:          *seed,
		}
		cfg.Engine.Model = model
		cfg.Engine.Cluster = diffkv.NewCluster(diffkv.L40(), 1)
		cfg.Engine.Traits = traits
		cfg.Engine.MaxGenLen = *maxGen
		cfg.Engine.MemoryReserve = *reserve
		cfg.Engine.PrefixCacheGroups = *cacheG
		if *method == "DiffKV" {
			cfg.Engine.UseManager = true
			cfg.Engine.HiFrac, cfg.Engine.LoFrac = 0.2, 0.25
			cfg.Engine.PreemptPolicy = *preempt
			cfg.Engine.HostMemoryBytes = int64(*hostGB * float64(1<<30))
		}
		if *tracePath != "" {
			collector = diffkv.NewTraceCollector(1 << 20)
			cfg.Tracer = collector
		}

		cs, err := diffkv.NewClusterServer(cfg)
		if err != nil {
			log.Fatal(err)
		}
		// same seed per policy: identical arrival sequences, fair comparison
		reqs := diffkv.NewRequestGen(bench, *maxGen, *seed).PoissonShared(*rate, *seconds, pc)
		m, err := cs.Run(reqs)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-16s %4d/%-3d %11.3f %11.3f %11.3f %9.4f %14.2f %5.0f%% %10.3f %7.1f%% %6d\n",
			m.Policy, m.Completed, m.Submitted,
			m.TTFT.P50, m.TTFT.P95, m.TTFT.P99, m.TPOT.P95,
			m.GoodputReqPerSec, 100*m.MeanUtilization, m.LoadImbalanceCV,
			100*m.PrefixCacheHitFrac, m.Rejected)
		if m.Preemptions > 0 || m.SwapOutBytes > 0 || m.HostPrefixHits > 0 {
			fmt.Printf("  offload: %d preemptions (%d requests) | %.1f MB swapped out / %.1f MB in | %.1f ms stalled | thrash %.2f | %d host prefix hits\n",
				m.Preemptions, m.PreemptedRequests,
				float64(m.SwapOutBytes)/(1<<20), float64(m.SwapInBytes)/(1<<20),
				m.SwapStallSeconds*1e3, m.ThrashRate, m.HostPrefixHits)
		}
		if stuck := m.Stuck(); stuck != 0 {
			fmt.Printf("  WARNING: %d dispatched requests never completed (liveness violation)\n", stuck)
		}

		if collector != nil {
			name := *tracePath
			if len(policies) > 1 {
				name = fmt.Sprintf("%s.%s", *tracePath, pol)
			}
			f, err := os.Create(name)
			if err != nil {
				log.Fatal(err)
			}
			if err := collector.WriteJSONL(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  trace: %d events -> %s\n", len(collector.Events()), name)
		}
	}
}
