// Command diffkv-cluster runs the multi-instance cluster simulator: N
// serving engines behind a router, under Poisson arrivals with shared
// prompt prefixes, and prints per-policy SLO metrics (TTFT/TPOT
// percentiles, goodput, utilization, load imbalance, shed count). The
// flags are a thin translation onto one diffkv.Scenario; -scenario
// replaces them with a spec file.
//
// Usage:
//
//	diffkv-cluster -instances 4 -rate 10 -seconds 60
//	diffkv-cluster -policy prefix-affinity -method DiffKV -trace events.jsonl
//	diffkv-cluster -policy all -bench MMLU -groups 16 -prefixlen 768
//	diffkv-cluster -chaos 2 -hostmem 4 -preempt swap     # fault injection
//	diffkv-cluster -disagg 2:2 -method DiffKV            # prefill/decode pools
//	diffkv-cluster -scenario scenario.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"diffkv"
)

// parseDisagg parses the -disagg value "P:D" into pool sizes.
func parseDisagg(s string) (*diffkv.DisaggSpec, error) {
	var p, d int
	if n, err := fmt.Sscanf(s, "%d:%d", &p, &d); n != 2 || err != nil {
		return nil, fmt.Errorf("bad -disagg %q (want prefill:decode, e.g. 2:2)", s)
	}
	return &diffkv.DisaggSpec{PrefillPool: p, DecodePool: d}, nil
}

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "load the full configuration from a scenario JSON file (overrides the other flags; a spec without routing sweeps the registry)")
		dump         = flag.Bool("dump-scenario", false, "print the flags as a scenario JSON spec and exit")
		instances    = flag.Int("instances", 4, "number of serving instances")
		modelName    = flag.String("model", "Llama3-8B", "model name")
		method       = flag.String("method", "vLLM", "registered serving method")
		benchName    = flag.String("bench", "MMLU", "workload benchmark")
		policy       = flag.String("policy", "all", "routing policy name, or \"all\" to sweep the registry")
		rate         = flag.Float64("rate", 10, "Poisson arrival rate (req/s, whole cluster)")
		seconds      = flag.Float64("seconds", 60, "arrival horizon")
		groups       = flag.Int("groups", 16, "shared-prefix groups (0 = no shared prefixes)")
		prefixLen    = flag.Int("prefixlen", 768, "shared prefix length (tokens)")
		sharedFrac   = flag.Float64("sharedfrac", 0.9, "fraction of requests in a prefix group")
		cacheG       = flag.Int("cachegroups", 8, "per-instance prefix-cache capacity (groups)")
		maxQueue     = flag.Int("maxqueue", 128, "admission bound: per-instance queue depth (0 = never shed)")
		maxGen       = flag.Int("maxgen", 256, "generation limit")
		memFrac      = flag.Float64("memfrac", 0.3, "DiffKV resident memory fraction")
		preempt      = flag.String("preempt", "recompute", "preemption recovery policy")
		hostGB       = flag.Float64("hostmem", 0, "per-instance host offload tier in GiB (0 disables)")
		reserve      = flag.Float64("reserve", 0, "memory reserve fraction (0 = default; raise to oversubscribe KV)")
		ttftSLO      = flag.Float64("ttft-slo", 2.0, "TTFT SLO (seconds) for goodput")
		tpotSLO      = flag.Float64("tpot-slo", 0.1, "TPOT SLO (seconds/token) for goodput")
		tracePath    = flag.String("trace", "", "write trace events as JSON lines to this file")
		seed         = flag.Uint64("seed", 42, "random seed")
		chaosRate    = flag.Float64("chaos", 0, "fault injection: random crashes per instance per minute (0 disables)")
		chaosDown    = flag.Float64("chaos-down", 5, "mean crash downtime in seconds (with -chaos)")
		pcieErr      = flag.Float64("pcie-err", 0, "fault injection: per-transfer PCIe host<->device error probability")
		retryBudget  = flag.Int("retry-budget", 0, "re-dispatch retries per request after crashes (0 = default 3, negative = none)")
		disaggSplit  = flag.String("disagg", "", "prefill/decode disaggregation pools as prefill:decode (e.g. 2:2; excludes -chaos)")
	)
	flag.Parse()

	var base *diffkv.Scenario
	if *scenarioPath != "" {
		var err error
		if base, err = diffkv.LoadScenario(*scenarioPath); err != nil {
			log.Fatal(err)
		}
		if base.Cluster == nil {
			log.Fatal("diffkv-cluster needs a scenario with a cluster spec; use diffkv-serve for single-instance scenarios")
		}
	} else {
		base = &diffkv.Scenario{
			Model:             *modelName,
			Method:            *method,
			MemFrac:           *memFrac,
			MaxGenLen:         *maxGen,
			MemoryReserve:     *reserve,
			PrefixCacheGroups: *cacheG,
			Preemption:        *preempt,
			HostMemoryGB:      *hostGB,
			Workload: diffkv.WorkloadSpec{
				Bench:      *benchName,
				RatePerSec: *rate,
				Seconds:    *seconds,
			},
			Cluster: &diffkv.ClusterSpec{
				Instances:     *instances,
				MaxQueueDepth: *maxQueue,
				TTFTSLOSec:    *ttftSLO,
				TPOTSLOSec:    *tpotSLO,
			},
			Seed: *seed,
		}
		if *groups > 0 {
			base.Workload.Prefix = &diffkv.PrefixConfig{
				Groups: *groups, PrefixLen: *prefixLen, SharedFrac: *sharedFrac,
			}
		}
		if *chaosRate > 0 || *pcieErr > 0 {
			base.Faults = &diffkv.FaultsSpec{
				CrashRatePerMin: *chaosRate,
				MeanDownSec:     *chaosDown,
				HorizonSec:      *seconds, // chaos spans the arrival window
				PCIeErrorRate:   *pcieErr,
				RetryBudget:     *retryBudget,
			}
		}
		if *disaggSplit != "" {
			d, err := parseDisagg(*disaggSplit)
			if err != nil {
				log.Fatal(err)
			}
			base.Disaggregation = d
		}
	}
	if *dump {
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(append(data, '\n'))
		return
	}

	var policies []string
	switch {
	case *scenarioPath != "" && base.Cluster.Routing != "":
		// a spec that pins its routing runs exactly that; omit routing in
		// the file to sweep the registry
		policies = []string{base.Cluster.Routing}
	case *policy == "all":
		policies = diffkv.RoutingPolicies()
	default:
		policies = []string{*policy}
	}

	pc := diffkv.PrefixConfig{}
	if base.Workload.Prefix != nil {
		pc = *base.Workload.Prefix
	}
	fmt.Printf("%d instances | %s | %s | %s | %.1f req/s for %.0fs | %d prefix groups x %d tokens (%.0f%% shared)\n\n",
		base.Cluster.Instances, base.Model, base.Method, base.Workload.Bench,
		base.Workload.RatePerSec, base.Workload.Seconds,
		pc.Groups, pc.PrefixLen, 100*pc.SharedFrac)

	header := fmt.Sprintf("%-16s %8s %11s %11s %11s %9s %14s %6s %10s %8s %6s",
		"policy", "done", "ttft-p50(s)", "ttft-p95(s)", "ttft-p99(s)", "tpot-p95", "goodput(req/s)", "util", "imbalance", "hit-frac", "shed")
	fmt.Println(header)
	for range header {
		fmt.Print("-")
	}
	fmt.Println()

	for _, pol := range policies {
		sc := *base
		spec := *base.Cluster
		spec.Routing = pol
		sc.Cluster = &spec
		var collector *diffkv.TraceCollector
		if *tracePath != "" {
			collector = diffkv.NewTraceCollector(1 << 20)
			sc.Tracer = collector
		}

		st, err := sc.Build()
		if err != nil {
			log.Fatal(err)
		}
		// same seed per policy: identical arrival sequences, fair comparison
		m, err := st.Cluster.Run(st.Requests())
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-16s %4d/%-3d %11.3f %11.3f %11.3f %9.4f %14.2f %5.0f%% %10.3f %7.1f%% %6d\n",
			m.Policy, m.Completed, m.Submitted,
			m.TTFT.P50, m.TTFT.P95, m.TTFT.P99, m.TPOT.P95,
			m.GoodputReqPerSec, 100*m.MeanUtilization, m.LoadImbalanceCV,
			100*m.PrefixCacheHitFrac, m.Rejected)
		if m.Preemptions > 0 || m.SwapOutBytes > 0 || m.HostPrefixHits > 0 {
			fmt.Printf("  offload: %d preemptions (%d requests) | %.1f MB swapped out / %.1f MB in | %.1f ms stalled | thrash %.2f | %d host prefix hits\n",
				m.Preemptions, m.PreemptedRequests,
				float64(m.SwapOutBytes)/(1<<20), float64(m.SwapInBytes)/(1<<20),
				m.SwapStallSeconds*1e3, m.ThrashRate, m.HostPrefixHits)
		}
		if d := m.Disagg; d != nil {
			fmt.Printf("  disagg: %d prefill + %d decode instances | %d shipments | %.1f MB over NIC | %.1f ms wire time\n",
				d.PrefillInstances, d.DecodeInstances, d.Transfers,
				float64(d.KVBytesShipped)/(1<<20), d.XferSeconds*1e3)
			for _, l := range d.Links {
				fmt.Printf("    link %d->%d: %d shipments, %.1f MB\n",
					l.From, l.To, l.Transfers, float64(l.Bytes)/(1<<20))
			}
		}
		if m.Crashes > 0 || m.Redispatches > 0 || m.Failed > 0 {
			fmt.Printf("  faults: %d crashes / %d restarts | %d re-dispatched | %d failed | %d swap-recovered | %.1f MB KV lost\n",
				m.Crashes, m.Restarts, m.Redispatches, m.Failed, m.SwapRecovered,
				float64(m.LostKVBytes)/(1<<20))
		}
		if stuck := m.Stuck(); stuck != 0 {
			fmt.Printf("  WARNING: %d dispatched requests never completed (liveness violation)\n", stuck)
		}

		if collector != nil {
			name := *tracePath
			if len(policies) > 1 {
				name = fmt.Sprintf("%s.%s", *tracePath, pol)
			}
			f, err := os.Create(name)
			if err != nil {
				log.Fatal(err)
			}
			if err := collector.WriteJSONL(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  trace: %d events -> %s\n", len(collector.Events()), name)
		}
	}
}
