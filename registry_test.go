package diffkv

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// turboKV is the third-party method of the acceptance scenario: a
// DiffKV-style pipeline with a slightly different measured footprint,
// registered at runtime from outside the internal packages.
type turboKV struct{}

func (turboKV) Name() string { return "TurboKV" }

func (turboKV) ServingTraits(memFrac float64) ServingTraits {
	if memFrac <= 0 {
		memFrac = 0.25
	}
	return ServingTraits{
		Name: "TurboKV", ResidentMemFrac: memFrac, AttnBytesFrac: memFrac,
		FrameworkOverhead: 1,
	}
}

func (turboKV) Compression() CompressionSetup {
	return CompressionSetup{UseManager: true, HiFrac: 0.15, LoFrac: 0.3}
}

// arrivalHash is the custom routing policy of the acceptance scenario:
// deterministic request-ID hashing over the routable instances.
type arrivalHash struct{}

func (arrivalHash) Name() string { return "arrival-hash" }

func (arrivalHash) Pick(req Request, snaps []RoutingSnapshot) int {
	return snaps[req.ID%len(snaps)].ID
}

// registerOnce guards the package-global registries across tests (Go
// runs package tests sequentially, but order must not matter).
func registerAcceptanceExtensions(t *testing.T) {
	t.Helper()
	if _, err := MethodByName("TurboKV"); err != nil {
		if err := RegisterMethod(turboKV{}); err != nil {
			t.Fatal(err)
		}
	}
	found := false
	for _, p := range RoutingPolicies() {
		if p == "arrival-hash" {
			found = true
		}
	}
	if !found {
		err := RegisterRoutingPolicy("arrival-hash", func(ClusterServerConfig) (RoutingPolicy, error) {
			return arrivalHash{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestDerivedListsNoDrift is the no-hard-coded-list-survives check: a
// runtime registration must surface in Methods, RoutingPolicies and
// PreemptPolicies, and the builtin prefixes must match the paper's
// reporting order — both properties only hold if every list is derived
// from its registry.
func TestDerivedListsNoDrift(t *testing.T) {
	if err := RegisterMethod(probeMethod{"probe-method"}); err != nil {
		t.Fatal(err)
	}
	if err := RegisterRoutingPolicy("probe-route", func(ClusterServerConfig) (RoutingPolicy, error) {
		return arrivalHash{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := RegisterPreemptPolicy("probe-preempt", func() PreemptRecoveryPolicy {
		return probePreempt{}
	}); err != nil {
		t.Fatal(err)
	}

	wantPrefix := func(got []string, prefix []string, probe string) {
		t.Helper()
		for i, w := range prefix {
			if i >= len(got) || got[i] != w {
				t.Fatalf("builtin order lost: got %v, want prefix %v", got, prefix)
			}
		}
		for _, g := range got {
			if g == probe {
				return
			}
		}
		t.Fatalf("runtime registration %q missing from derived list %v", probe, got)
	}
	wantPrefix(Methods(), []string{"vLLM", "Quest", "SnapKV", "Atom", "KIVI", "DiffKV"}, "probe-method")
	wantPrefix(RoutingPolicies(), []string{RouteRoundRobin, RouteLeastLoaded, RoutePrefixAffinity}, "probe-route")
	wantPrefix(PreemptPolicies(), []string{PreemptRecompute, PreemptSwap, PreemptCompressSwap}, "probe-preempt")
}

type probeMethod struct{ name string }

func (p probeMethod) Name() string { return p.name }
func (p probeMethod) ServingTraits(float64) ServingTraits {
	return ServingTraits{Name: p.name, ResidentMemFrac: 1, AttnBytesFrac: 1, FrameworkOverhead: 1}
}

type probePreempt struct{}

func (probePreempt) Name() string { return "probe-preempt" }
func (probePreempt) PickVictim(c []PreemptVictim) int {
	return len(c) - 1
}
func (probePreempt) Recovery() PreemptRecovery { return RecoverRecompute }

// TestRegistryEdgeCases pins duplicate-registration errors, unknown-name
// error text (it must name the registry and list known entries), and
// registration visibility through MethodByName / TraitsFor.
func TestRegistryEdgeCases(t *testing.T) {
	if err := RegisterMethod(probeMethod{"edge-method"}); err != nil {
		t.Fatal(err)
	}
	if err := RegisterMethod(probeMethod{"edge-method"}); err == nil ||
		!strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate method registration error = %v", err)
	}
	if err := RegisterMethod(probeMethod{""}); err == nil {
		t.Fatal("empty method name must error")
	}
	if err := RegisterMethod(nil); err == nil {
		t.Fatal("nil method must error")
	}

	m, err := MethodByName("edge-method")
	if err != nil {
		t.Fatalf("registration not visible from MethodByName: %v", err)
	}
	if m.Name() != "edge-method" {
		t.Fatalf("wrong method returned: %s", m.Name())
	}
	tr, err := TraitsFor("edge-method", 0)
	if err != nil || tr.Name != "edge-method" {
		t.Fatalf("TraitsFor over a runtime registration: %v %v", tr, err)
	}

	_, err = MethodByName("no-such-method")
	if err == nil {
		t.Fatal("unknown method must error")
	}
	for _, want := range []string{"unknown serving method", `"no-such-method"`, "vLLM", "DiffKV"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("unknown-method error %q must contain %q", err, want)
		}
	}

	if err := RegisterRoutingPolicy(RouteRoundRobin, func(ClusterServerConfig) (RoutingPolicy, error) {
		return arrivalHash{}, nil
	}); err == nil {
		t.Fatal("duplicate routing policy must error")
	}
	if err := RegisterPreemptPolicy(PreemptSwap, func() PreemptRecoveryPolicy { return probePreempt{} }); err == nil {
		t.Fatal("duplicate preemption policy must error")
	}
	if _, err := NewClusterServer(ClusterServerConfig{Instances: 1, Policy: "no-such-route"}); err == nil ||
		!strings.Contains(err.Error(), "unknown routing policy") {
		t.Fatalf("unknown routing policy error = %v", err)
	}
}

// TestScenarioSessionAcceptance is the PR's acceptance path: a
// third-party method (RegisterMethod) and a runtime-registered routing
// policy run end-to-end through a Scenario-built cluster, driven by
// Session handles with one mid-flight cancellation.
func TestScenarioSessionAcceptance(t *testing.T) {
	registerAcceptanceExtensions(t)

	sc := Scenario{
		Name:      "acceptance",
		Model:     "Llama3-8B",
		Method:    "TurboKV",
		MemFrac:   0.3,
		MaxGenLen: 64,
		Workload:  WorkloadSpec{Bench: "GSM8K", Requests: 8},
		Cluster:   &ClusterSpec{Instances: 2, Routing: "arrival-hash"},
		Seed:      23,
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	st, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cluster == nil || st.Server != nil {
		t.Fatal("cluster spec must build a cluster stack")
	}
	if st.Cluster.Policy() != "arrival-hash" {
		t.Fatalf("cluster policy = %s", st.Cluster.Policy())
	}

	tokens := map[int]int{}
	var sessions []*Session
	var victim *Session
	for i, r := range st.Requests() {
		s, err := st.Cluster.Open(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		id := s.ID()
		s.OnToken(func(u TokenUpdate) {
			if !u.First {
				tokens[id] = u.Generated
			}
		})
		if i == 3 {
			victim = s
			s.OnToken(func(u TokenUpdate) {
				if !u.First {
					tokens[id] = u.Generated
				}
				if u.Generated == 10 {
					s.Cancel() // mid-flight cancellation from the stream
				}
			})
		}
		sessions = append(sessions, s)
	}
	if err := st.Cluster.DrainContext(context.Background()); err != nil {
		t.Fatal(err)
	}

	m := st.Cluster.Metrics()
	if m.Completed != 7 || m.Cancelled != 1 || m.Stuck() != 0 {
		t.Fatalf("completed %d cancelled %d stuck %d", m.Completed, m.Cancelled, m.Stuck())
	}
	if _, err := victim.Completion(); !errors.Is(err, ErrSessionCancelled) {
		t.Fatalf("victim error = %v", err)
	}
	if tokens[victim.ID()] != 10 {
		t.Fatalf("victim streamed %d tokens after cancel at 10", tokens[victim.ID()])
	}
	for _, s := range sessions {
		if s == victim {
			continue
		}
		cp, err := s.Completion()
		if err != nil {
			t.Fatalf("session %d: %v", s.ID(), err)
		}
		if tokens[s.ID()] != cp.Req.GenLen {
			t.Fatalf("session %d streamed %d of %d tokens", s.ID(), tokens[s.ID()], cp.Req.GenLen)
		}
	}
	// the custom policy actually routed: both instances saw work
	for i, is := range m.PerInstance {
		if is.Dispatched == 0 {
			t.Fatalf("instance %d got no requests from arrival-hash routing", i)
		}
	}
}
